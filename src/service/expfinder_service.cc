#include "src/service/expfinder_service.h"

#include <algorithm>
#include <optional>

#include "src/matching/result_graph.h"
#include "src/ranking/topk.h"
#include "src/util/timer.h"

namespace expfinder {

namespace {

/// The inner engine never serves cached reads — the service's shared,
/// mutex-guarded cache replaces its per-engine one.
EngineOptions WithEngineCacheDisabled(EngineOptions options) {
  options.use_cache = false;
  return options;
}

bool OverBudget(const QueryRequest& request, const Timer& timer) {
  return request.time_budget_ms > 0.0 &&
         timer.ElapsedMillis() > request.time_budget_ms;
}

/// Idle contexts retained between queries. Each WorkerContext can hold two
/// CSR snapshots plus a parked seeding pool, so a burst wider than this
/// drops the surplus on release instead of keeping peak-concurrency memory
/// for the service's lifetime.
size_t IdleContextCap() {
  return std::max<size_t>(8, 2 * ThreadPool::ResolveThreads(0));
}

}  // namespace

ExpFinderService::ContextLease::ContextLease(ExpFinderService* service)
    : service_(service) {
  {
    std::lock_guard<std::mutex> lock(service_->ctx_mu_);
    if (!service_->idle_contexts_.empty()) {
      ctx_ = std::move(service_->idle_contexts_.back());
      service_->idle_contexts_.pop_back();
    }
  }
  if (ctx_ == nullptr) ctx_ = std::make_unique<WorkerContext>();
}

ExpFinderService::ContextLease::~ContextLease() {
  std::lock_guard<std::mutex> lock(service_->ctx_mu_);
  if (service_->idle_contexts_.size() < IdleContextCap()) {
    service_->idle_contexts_.push_back(std::move(ctx_));
  }  // else: drop — frees the context's snapshots and parked pool threads
}

ExpFinderService::ExpFinderService(Graph* g, ServiceOptions options)
    : g_(g),
      options_(std::move(options)),
      engine_(g, WithEngineCacheDisabled(options_.engine)),
      cache_(options_.engine.use_cache ? options_.engine.cache_capacity : 0) {}

Result<QueryResponse> ExpFinderService::Query(const QueryRequest& request) {
  Timer timer;
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (Status st = request.pattern.Validate(); !st.ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return st;
  }
  const bool use_cache = request.use_cache.value_or(options_.engine.use_cache);
  const uint64_t key = QueryCacheKey(request.pattern, request.semantics);

  QueryResponse response;
  {
    std::shared_lock<std::shared_mutex> reader(state_mu_);
    response.graph_version = g_->version();

    if (use_cache) {
      std::lock_guard<std::mutex> lock(cache_mu_);
      if (auto hit = cache_.Get(key, response.graph_version)) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        response.answer = std::move(hit);
        response.path = ServingPath::kCache;
      }
    }

    if (response.answer == nullptr) {
      MatchRelation matches;
      ContextLease lease(this);
      if (auto snapshot =
              engine_.MaintainedSnapshot(request.pattern, request.semantics)) {
        maintained_hits_.fetch_add(1, std::memory_order_relaxed);
        response.path = ServingPath::kMaintained;
        matches = std::move(*snapshot);
      } else {
        if (OverBudget(request, timer)) {
          rejected_.fetch_add(1, std::memory_order_relaxed);
          return Status::DeadlineExceeded("time budget exhausted before evaluation");
        }
        EvalOverrides overrides;
        overrides.match_threads = request.match_threads;
        EvalPath path = EvalPath::kDirect;
        auto evaluated =
            engine_.EvaluateWith(request.pattern, request.semantics, overrides,
                                 &lease.ctx().direct, &lease.ctx().compressed, &path);
        if (!evaluated.ok()) {
          rejected_.fetch_add(1, std::memory_order_relaxed);
          return evaluated.status();
        }
        matches = std::move(evaluated).value();
        switch (path) {
          case EvalPath::kPlannerShortCircuit:
            planner_short_circuits_.fetch_add(1, std::memory_order_relaxed);
            response.path = ServingPath::kPlannerShortCircuit;
            break;
          case EvalPath::kCompressed:
            compressed_evals_.fetch_add(1, std::memory_order_relaxed);
            response.path = ServingPath::kCompressed;
            break;
          case EvalPath::kDirect:
            direct_evals_.fetch_add(1, std::memory_order_relaxed);
            response.path = ServingPath::kDirect;
            break;
        }
      }
      ResultGraph rg(*g_, request.pattern, matches, &lease.ctx().direct);
      response.answer = std::make_shared<const QueryAnswer>(
          QueryAnswer{std::move(matches), std::move(rg)});
      if (use_cache) {
        std::lock_guard<std::mutex> lock(cache_mu_);
        cache_.Put(key, response.graph_version, response.answer);
      }
    }
  }  // reader lock released: ranking reads only the immutable answer.

  if (request.top_k) {
    // A request that ran out of budget after evaluation keeps its
    // serving-path classification; only the ranked list is refused.
    if (OverBudget(request, timer)) {
      return Status::DeadlineExceeded("time budget exhausted before ranking");
    }
    auto ranked = TopKMatchesWith(response.answer->result_graph, request.pattern,
                                  *request.top_k, request.metric);
    if (!ranked.ok()) return ranked.status();  // classification kept (see above)
    response.ranked = std::move(ranked).value();
  }
  response.eval_ms = timer.ElapsedMillis();
  return response;
}

std::vector<Result<QueryResponse>> ExpFinderService::QueryBatch(
    const std::vector<QueryRequest>& requests) {
  query_batches_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::optional<Result<QueryResponse>>> slots(requests.size());
  if (!requests.empty()) {
    const size_t workers = std::min(
        ThreadPool::ResolveThreads(options_.batch_threads), requests.size());
    std::lock_guard<std::mutex> lock(batch_mu_);
    if (batch_pool_ == nullptr || batch_pool_->num_workers() < workers) {
      batch_pool_ = std::make_unique<ThreadPool>(workers);
    }
    batch_pool_->ParallelChunks(
        requests.size(), workers, [&](size_t, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) slots[i] = Query(requests[i]);
        });
  }
  std::vector<Result<QueryResponse>> results;
  results.reserve(slots.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

Status ExpFinderService::Mutate(const UpdateBatch& batch) {
  std::unique_lock<std::shared_mutex> writer(state_mu_);
  EF_RETURN_NOT_OK(engine_.ApplyUpdates(batch));
  batches_applied_.fetch_add(1, std::memory_order_relaxed);
  updates_applied_.fetch_add(batch.size(), std::memory_order_relaxed);
  return Status::OK();
}

Result<NodeId> ExpFinderService::AddNode(
    std::string_view label,
    const std::vector<std::pair<std::string, AttrValue>>& attrs) {
  std::unique_lock<std::shared_mutex> writer(state_mu_);
  auto id = engine_.AddNode(label, attrs);
  if (id.ok()) nodes_added_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Status ExpFinderService::RegisterMaintainedQuery(const Pattern& q,
                                                 MatchSemantics semantics) {
  std::unique_lock<std::shared_mutex> writer(state_mu_);
  return engine_.RegisterMaintainedQuery(q, semantics);
}

bool ExpFinderService::IsMaintained(const Pattern& q,
                                    MatchSemantics semantics) const {
  std::shared_lock<std::shared_mutex> reader(state_mu_);
  return engine_.IsMaintained(q, semantics);
}

Status ExpFinderService::CompressNow() {
  std::unique_lock<std::shared_mutex> writer(state_mu_);
  return engine_.CompressNow();
}

uint64_t ExpFinderService::version() const {
  std::shared_lock<std::shared_mutex> reader(state_mu_);
  return g_->version();
}

ServiceStats ExpFinderService::stats() const {
  ServiceStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.maintained_hits = maintained_hits_.load(std::memory_order_relaxed);
  s.planner_short_circuits = planner_short_circuits_.load(std::memory_order_relaxed);
  s.compressed_evals = compressed_evals_.load(std::memory_order_relaxed);
  s.direct_evals = direct_evals_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.query_batches = query_batches_.load(std::memory_order_relaxed);
  s.batches_applied = batches_applied_.load(std::memory_order_relaxed);
  s.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  s.nodes_added = nodes_added_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace expfinder
