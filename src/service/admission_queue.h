// The bounded, priority-aware admission queue between Submit and the
// serving workers. Admission control is the service's overload story: a
// push against a full queue is refused with kResourceExhausted *at submit
// time*, so callers see backpressure immediately instead of watching their
// requests rot in an unbounded backlog.
//
// Ordering is strict priority, FIFO within a priority lane. The queue holds
// requests only; deadline expiry and cancellation of queued entries are
// detected by the worker at pop time (the entry carries its admission-time
// stopwatch), which keeps push/pop O(1) and lock hold times tiny.

#ifndef EXPFINDER_SERVICE_ADMISSION_QUEUE_H_
#define EXPFINDER_SERVICE_ADMISSION_QUEUE_H_

#include <array>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>

#include "src/service/service_types.h"
#include "src/util/timer.h"

namespace expfinder {

/// \brief One admitted request waiting for a serving worker.
struct PendingQuery {
  QueryRequest request;
  std::shared_ptr<TicketState> ticket;
  /// Started at Submit; measures queue wait and anchors the request's
  /// time budget (which covers queue time by design).
  Timer submitted;
};

/// \brief Thread-safe bounded priority queue of PendingQuery. All methods
/// are O(1) under one mutex.
class AdmissionQueue {
 public:
  /// `capacity` is the maximum number of queued (admitted, not yet popped)
  /// requests; 0 is clamped to 1 so the queue can always make progress.
  explicit AdmissionQueue(size_t capacity);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admits `pending`, or refuses with kResourceExhausted when the queue
  /// already holds capacity() entries. Never blocks.
  Status TryPush(std::unique_ptr<PendingQuery> pending);

  /// Pops the oldest entry of the highest non-empty priority lane, or
  /// nullptr when the queue is empty. Never blocks.
  std::unique_ptr<PendingQuery> TryPop();

  /// Entries currently queued.
  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Entries currently queued per priority lane, indexed by QueryPriority —
  /// the per-lane depth gauges ServiceStats exposes. One coherent snapshot
  /// (all lanes read under the same lock hold).
  std::array<size_t, kNumQueryPriorities> LaneDepths() const;

 private:
  const size_t capacity_;

  mutable std::mutex mu_;
  /// One FIFO lane per priority, indexed by QueryPriority; guarded by mu_.
  std::array<std::deque<std::unique_ptr<PendingQuery>>, kNumQueryPriorities> lanes_;
  size_t size_ = 0;  // guarded by mu_
};

}  // namespace expfinder

#endif  // EXPFINDER_SERVICE_ADMISSION_QUEUE_H_
