// ExpFinderService: the concurrent serving facade over QueryEngine (paper
// §II, Fig. 2 — a query engine serving many analysts at once; ROADMAP north
// star: heavy traffic from millions of users).
//
// Serving model — asynchronous submission over one queue:
//
//   * Submit(request) validates, admits the request into a bounded
//     priority queue, and returns a QueryTicket in O(queue push) — no
//     evaluation happens on the submitting thread. Serving workers drain
//     the queue (strict priority, FIFO within a priority) and complete the
//     ticket; callers Wait / TryGet / Cancel or register a completion
//     callback.
//   * Overload is explicit: when the queue is full, Submit completes the
//     ticket immediately with kResourceExhausted (counted in
//     ServiceStats::rejected_overload). A request whose time budget expires
//     while queued completes with kDeadlineExceeded without ever touching
//     the engine; a queued or running request can be cancelled
//     cooperatively (checked when dequeued and at evaluation stage
//     boundaries).
//   * Query / QueryBatch are thin synchronous wrappers over Submit — there
//     is exactly one serving path, so priorities, deadlines, admission
//     control, and stats apply uniformly.
//
// Concurrency model — epoch-published snapshots (ISSUE 6; replaces the
// PR 3 reader/writer lock):
//
//   * Writers (Mutate / AddNode / RegisterMaintainedQuery / CompressNow)
//     serialize on a plain mutex, apply their change to the engine, then
//     *publish*: the engine freezes an immutable EngineSnapshot (graph copy
//     + CSR, frozen compressed view, materialized maintained relations) and
//     the service swaps it into an atomic epoch pointer. Publishing never
//     waits for readers.
//   * Readers pin the epoch snapshot (one atomic shared_ptr load) and
//     evaluate entirely against it — matching, maintained lookups, result
//     construction all read frozen state, so a reader NEVER blocks on the
//     writer lock and a writer never waits for evaluations to drain. The
//     graph version a response reports is exactly the version its relation
//     was computed against.
//   * The last ServiceOptions::retained_snapshots published snapshots stay
//     pinned in a ring; QueryRequest::as_of_version serves time-travel
//     reads from it (evicted versions fail with NotFound).
//   * Each worker borrows a MatchContext pair from a pool (contexts are
//     single-owner scratch; see match_context.h) and binds it to the pinned
//     snapshot; the shared ResultCache keys answers by (query, version), so
//     pinned reads can never observe a newer relation.
//
// QueryEngine remains the single-threaded core: the service composes it,
// calling the stateless EvalCore against pinned snapshots from workers and
// the engine's mutating operations (followed by Publish) from writers.

#ifndef EXPFINDER_SERVICE_EXPFINDER_SERVICE_H_
#define EXPFINDER_SERVICE_EXPFINDER_SERVICE_H_

#include <array>
#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <string_view>
#include <utility>
#include <vector>

#include "src/engine/query_engine.h"
#include "src/replication/delta.h"
#include "src/replication/fault_source.h"
#include "src/replication/fleet.h"
#include "src/service/admission_queue.h"
#include "src/service/service_types.h"
#include "src/storage/durable_graph.h"
#include "src/util/thread_pool.h"

namespace expfinder {

/// \brief Read-scaling via an in-process replica fleet (PR 9; see
/// src/replication/). With `num_replicas` > 0 the service ships every
/// acknowledged mutation into an in-process delta stream, runs N replicas
/// that apply it in LSN order (each publishing its own snapshot), and
/// routes Submit reads across them — writes, as_of reads, and anything no
/// replica can satisfy stay on the primary. Every routed response still
/// reports the exact graph_version its relation was computed against, and
/// replica state at version V is bit-identical to the primary's at V.
struct ReplicationOptions {
  /// Replicas to run; 0 = replication off (every read serves from the
  /// primary epoch, exactly the pre-PR 9 behavior).
  size_t num_replicas = 0;
  /// How Submit reads pick a replica.
  ReadRouting routing = ReadRouting::kRoundRobin;
  /// Max deltas per replica fetch.
  size_t fetch_batch = 256;
  /// Applier poll interval when caught up.
  double poll_interval_ms = 2.0;
  /// In-memory delta window (records). Replicas lagging further catch up
  /// from the WAL tail when durability is on, or re-install a snapshot
  /// when it is off.
  size_t window_records = 1024;
  /// How long a read with QueryRequest::min_version waits for a replica to
  /// reach that version before falling back / failing.
  double max_staleness_wait_ms = 200.0;
  /// Serve from the primary epoch when no replica satisfies a read (fleet
  /// still bootstrapping, all replicas down, or min_version unreachable in
  /// time). Off = such reads fail instead — kUnavailable when the fleet is
  /// down/unrecoverable, kDeadlineExceeded when it was merely too slow —
  /// keeping the primary strictly write-only for this workload.
  bool fallback_to_primary = true;

  // --- Read-resilience ladder (PR 10). A routed read that misses walks
  // these rungs in order: hedged second read -> bounded retries ->
  // staleness relaxation -> primary fallback (above) -> error. Worst-case
  // routing wait is max_staleness_wait_ms + read_retries * retry_wait_ms.

  /// Extra Acquire attempts after the budgeted wait timed out while the
  /// fleet could still recover (quarantined replicas pending auto-restart).
  /// Each waits retry_wait_ms. 0 = no retries.
  size_t read_retries = 1;
  double retry_wait_ms = 20.0;
  /// > 0 enables hedging: the first (policy-routed) wait is capped at this
  /// threshold, and on a miss a second acquire goes straight to the
  /// freshest replica (least-lagged routing) with the rest of the
  /// staleness budget. 0 = off. Only applies to reads with a min_version
  /// floor (unfloored reads never wait at all).
  double hedge_delay_ms = 0.0;
  /// > 0 enables bounded-staleness relaxation as the last replica rung: a
  /// read whose floor cannot be met in time accepts a replica within this
  /// many versions BELOW min_version (no extra waiting — a probe). The
  /// response still reports the exact version served, so read-your-writes
  /// callers can detect the relaxation. 0 = off (strict floors).
  uint64_t relax_staleness_versions = 0;
  /// Fault injection for the delta transport (tests / chaos drills): when
  /// any() the service wraps its delta stream in a FaultyDeltaSource with
  /// this plan. See replication/fault_source.h.
  DeltaFaultPlan delta_faults;
  /// Watchdog policy for the fleet's self-healing (quarantine thresholds,
  /// auto-restart backoff). See replication/health.h.
  ReplicaHealthOptions health;
};

/// \brief Service configuration: the composed engine's options plus the
/// service-level knobs.
struct ServiceOptions {
  /// Options of the underlying engine. `use_cache`/`cache_capacity`
  /// configure the *service's* shared result cache (the inner engine's own
  /// cache is disabled — the service serves all cached reads itself).
  EngineOptions engine;
  /// Serving worker threads draining the admission queue — the maximum
  /// number of concurrently evaluating requests (0 = hardware_concurrency).
  /// Independent of EngineOptions::match_threads, which parallelizes
  /// *within* one matcher; serving workloads usually want match_threads = 1
  /// so requests, not seeding phases, use the cores.
  uint32_t serving_threads = 0;
  /// Admission-queue capacity: the maximum number of admitted-but-not-yet-
  /// served requests. A Submit beyond it fails fast with
  /// kResourceExhausted (backpressure), it never blocks.
  size_t queue_capacity = 256;
  /// How many published snapshots (including the current epoch) stay
  /// pinned for QueryRequest::as_of_version reads. Each retained snapshot
  /// holds a full graph copy + CSR, so this is deliberately small; 1 = no
  /// time travel, current epoch only. Clamped to >= 1.
  size_t retained_snapshots = 4;
  /// Durability (ISSUE 7): when `durability.dir` is non-empty the service
  /// opens a DurableGraph there at construction — recovering any previous
  /// state into the caller's graph (checkpoint + WAL replay; a fresh
  /// directory instead checkpoints the caller's initial graph) — and from
  /// then on every Mutate/AddNode appends a WAL record *before* the new
  /// epoch is published and before the caller sees OK. Under
  /// FsyncPolicy::kEveryRecord an acknowledged mutation therefore survives
  /// any crash. Every `checkpoint_every_n_batches` records a checkpoint of
  /// the published snapshot is written (on a serving-executor thread by
  /// default) and covered WAL segments are dropped. Unrecoverable
  /// corruption at boot degrades: the service starts from the best
  /// available prefix and counts a data_loss_event rather than aborting.
  DurabilityOptions durability;
  /// Read scaling (PR 9): run `replication.num_replicas` in-process
  /// replicas fed by a delta stream of the WAL's mutation records and route
  /// Submit reads across them. See ReplicationOptions.
  ReplicationOptions replication;
  /// Open for admission but paused for serving: Submit queues requests
  /// (admission control, priorities, and Cancel all work) but nothing
  /// evaluates until Resume(). Useful for maintenance windows — warm the
  /// queue while a bulk load runs — and for deterministic tests of queue
  /// behavior. Query/QueryBatch on a paused service block until Resume(),
  /// and so does Wait() on any queued ticket, cancelled or not: queued
  /// terminal states (cancel, expired budget) are observed at dequeue.
  bool start_paused = false;
};

/// \brief Thread-safe expert-finding service with an asynchronous
/// Submit/ticket API, priority admission control, epoch-published
/// snapshot-isolated reads, and synchronous convenience wrappers.
class ExpFinderService {
 public:
  /// `g` must outlive the service; the service mutates it in Mutate/AddNode.
  /// No other code may mutate `g` while the service exists.
  explicit ExpFinderService(Graph* g, ServiceOptions options = {});

  /// Completes every still-pending ticket as Cancelled ("service shutting
  /// down"), then joins the serving workers. In-flight evaluations finish
  /// normally first. Tickets may outlive the service.
  ~ExpFinderService();

  ExpFinderService(const ExpFinderService&) = delete;
  ExpFinderService& operator=(const ExpFinderService&) = delete;

  const ServiceOptions& options() const { return options_; }

  /// Submits one request for asynchronous evaluation and returns its
  /// ticket. Costs O(queue push): validation + admission, no evaluation.
  /// On validation failure or a full queue the returned ticket is already
  /// complete (InvalidArgument / ResourceExhausted). Thread-safe.
  QueryTicket Submit(QueryRequest request);

  /// Starts serving when the service was constructed with
  /// `start_paused = true`: every queued request becomes eligible for a
  /// worker, in priority order. Idempotent; a no-op on a running service.
  void Resume();

  /// Synchronous convenience: Submit(request) + Wait. Exactly the same
  /// serving path — the request passes through the admission queue and is
  /// evaluated by a serving worker, so priorities, deadlines, and overload
  /// rejection apply identically.
  Result<QueryResponse> Query(const QueryRequest& request);

  /// Submits every request up front, then waits for all tickets; results
  /// are positionally aligned with `requests` and each request succeeds or
  /// fails independently. Responses of one batch are NOT guaranteed to
  /// share a graph version — each is individually snapshot-consistent, but
  /// a concurrent Mutate may land between two of them (pin a shared
  /// as_of_version to force one version across a batch). Concurrent
  /// QueryBatch calls interleave in the shared admission queue.
  std::vector<Result<QueryResponse>> QueryBatch(
      const std::vector<QueryRequest>& requests);

  /// Applies a batch of edge updates atomically and publishes the
  /// successor snapshot: validation failure changes nothing; on success
  /// maintained queries and the compressed graph are carried over and the
  /// new epoch becomes visible to subsequent reads. In-flight reads keep
  /// their pinned snapshot — a Mutate never waits for them.
  ///
  /// Durability failure (non-OK with durability enabled): the batch was
  /// still applied in memory and published — it is merely NOT acknowledged
  /// durable. It may nevertheless persist later (an appended-but-unsynced
  /// WAL record can reach disk; any later checkpoint captures the published
  /// graph), so an error-returned batch must not be blindly re-submitted:
  /// non-idempotent update sequences could apply twice after a recovery.
  Status Mutate(const UpdateBatch& batch);

  /// Adds a person to the network (no edges yet; connect via Mutate).
  Result<NodeId> AddNode(
      std::string_view label,
      const std::vector<std::pair<std::string, AttrValue>>& attrs = {});

  /// Registers Q as an incrementally maintained query (writer-side: the
  /// initial relation is computed under the writer lock, then published).
  Status RegisterMaintainedQuery(
      const Pattern& q,
      MatchSemantics semantics = MatchSemantics::kBoundedSimulation);
  bool IsMaintained(const Pattern& q,
                    MatchSemantics semantics = MatchSemantics::kBoundedSimulation) const;

  /// (Re)builds the compressed graph now (writer-side; no-op when current).
  Status CompressNow();
  /// The compressed graph, or nullptr when not built. The pointee is only
  /// stable while no Mutate/CompressNow runs — single-threaded inspection
  /// use only (readers evaluate against the frozen copy in their snapshot).
  const CompressedGraph* compressed() const { return engine_.compressed(); }

  /// The underlying graph. Reading it is safe while no Mutate/AddNode is in
  /// flight (e.g. single-threaded sections, display code); the service
  /// itself never hands it to request threads — they read pinned snapshots.
  const Graph& graph() const { return *g_; }

  /// Graph version of the current epoch snapshot (lock-free read).
  uint64_t version() const;

  /// Versions currently served for as_of_version reads, oldest first (the
  /// retained ring; the last entry is the current epoch).
  std::vector<uint64_t> RetainedVersions() const;

  /// Snapshot of the cumulative counters.
  ServiceStats stats() const;

  /// Whether durability is active (configured AND the directory opened).
  bool durable() const { return durable_ != nullptr; }

  /// What recovery found at construction (all-defaults when durability is
  /// off). `data_loss` true means the service is serving a degraded
  /// prefix; `detail` says why.
  const GraphRecoveryInfo& recovery_info() const { return recovery_info_; }

  /// Non-OK when durability was requested but could not be brought up
  /// (environmental failure — e.g. the directory cannot be created); the
  /// service then runs memory-only, exactly as if durability were off.
  const Status& durability_status() const { return durability_status_; }

  /// Writes a checkpoint of the current epoch snapshot right now (and
  /// truncates covered WAL segments). InvalidArgument when durability is
  /// off. Runs inline on the calling thread.
  Status CheckpointNow();

  /// The replica fleet, or nullptr when replication is off. Exposed for
  /// observability and the crash/catch-up admin hooks
  /// (StopReplica/RestartReplica); routing happens inside Submit.
  ReplicaFleet* fleet() { return fleet_.get(); }
  const ReplicaFleet* fleet() const { return fleet_.get(); }

  /// The fault-injecting transport decorator, or nullptr when replication
  /// is off or no fault plan was configured. Chaos drills use it to read
  /// injected-fault counters and to disarm the plan mid-run (SetPlan({})).
  FaultyDeltaSource* delta_faults() { return faulty_source_.get(); }

 private:
  /// Per-worker scratch: one context for evaluation over the snapshot's
  /// graph, one over its Gc, so a worker alternating direct/compressed
  /// queries doesn't thrash one binding.
  struct WorkerContext {
    MatchContext direct;
    MatchContext compressed;
  };

  /// RAII borrow of a WorkerContext from the free pool (creates one when
  /// the pool is empty, returns it on destruction).
  class ContextLease {
   public:
    explicit ContextLease(ExpFinderService* service);
    ~ContextLease();
    WorkerContext& ctx() { return *ctx_; }

   private:
    ExpFinderService* service_;
    std::unique_ptr<WorkerContext> ctx_;
  };

  /// Executor task paired with one admission: pops the highest-priority
  /// entry, handles queue-level terminal states (shutdown, cancellation,
  /// expired budget), and otherwise serves it and completes the ticket.
  void DrainOne();

  /// The evaluation path: pin a snapshot (epoch or as_of ring), cache
  /// probe, maintained lookup, EvalCore evaluation with cancellation/
  /// deadline checkpoints, ranking. Entirely lock-free against writers.
  /// Updates the per-outcome counters; `queue_ms` is the admission wait
  /// already measured by DrainOne.
  Result<QueryResponse> Serve(const PendingQuery& pending, double queue_ms);

  /// Publishes the engine's current state as the new epoch and pushes it
  /// into the retained ring (caller holds writer_mu_).
  void PublishLocked();

  /// The retained snapshot at `version`, or nullptr when evicted/unknown.
  std::shared_ptr<const EngineSnapshot> FindRetained(uint64_t version) const;

  /// Resolved per-request cache participation.
  bool UseCache(const QueryRequest& request) const {
    return request.use_cache.value_or(options_.engine.use_cache);
  }

  /// Opens the durability subsystem and recovers into `*g` (runs in the
  /// member-init list BEFORE the engine captures the graph). Returns null
  /// when durability is off or bring-up failed (`status`/`info` say why).
  static std::unique_ptr<DurableGraph> OpenDurability(Graph* g,
                                                      const ServiceOptions& options,
                                                      GraphRecoveryInfo* info,
                                                      Status* status);

  /// If a checkpoint is due and none is in flight, checkpoints the current
  /// epoch snapshot — on the executor by default, inline when
  /// durability.background_checkpoints is off. Caller holds writer_mu_.
  void MaybeCheckpointLocked();

  /// Brings up the delta source + replica fleet (ctor, after the first
  /// publish; no locks held).
  void StartReplication();

  /// The replica rungs of the read-resilience ladder: policy-routed
  /// acquire (capped at the hedge threshold when hedging), hedged
  /// least-lagged second read, bounded retries, staleness relaxation.
  /// Returns the snapshot or nullptr; `*outcome` reports the final miss
  /// kind (kTimeout vs kUnavailable) for the caller's error mapping.
  std::shared_ptr<const EngineSnapshot> AcquireRouted(uint64_t min_version,
                                                      AcquireOutcome* outcome);

  /// Full-snapshot bootstrap for a replica: copies the primary's graph and
  /// the matching delta cursor under the writer lock. Called from applier
  /// threads (fleet bootstrap when no usable checkpoint exists).
  ReplicaBootstrap BootstrapReplica();

  /// Ships one just-logged mutation record into the delta stream (caller
  /// holds writer_mu_ — Ship order must match LSN order).
  void ShipLocked(std::string payload);

  Graph* g_;
  ServiceOptions options_;

  /// Durability subsystem; null when off. Declared (and initialized)
  /// before engine_ so recovery rewrites *g_ before the engine ever reads
  /// it.
  GraphRecoveryInfo recovery_info_;
  Status durability_status_;
  std::unique_ptr<DurableGraph> durable_;

  /// Serializes writers (Mutate/AddNode/RegisterMaintainedQuery/
  /// CompressNow) and every non-const engine call. Readers never take it.
  std::mutex writer_mu_;
  QueryEngine engine_;  // guarded by writer_mu_; readers touch only
                        // pinned snapshots and const configuration

  /// The current published snapshot. Writers store (under writer_mu_),
  /// readers load and pin — lock-free on the read side.
  std::atomic<std::shared_ptr<const EngineSnapshot>> epoch_;

  /// Recently published snapshots, oldest first; back() == current epoch.
  /// Guarded by ring_mu_ (touched by publishes and as_of lookups only —
  /// current-epoch reads never take it).
  mutable std::mutex ring_mu_;
  std::deque<std::shared_ptr<const EngineSnapshot>> retained_;

  mutable std::mutex cache_mu_;
  ResultCache cache_;  // guarded by cache_mu_; keys fold in the version

  std::mutex ctx_mu_;
  std::vector<std::unique_ptr<WorkerContext>> idle_contexts_;  // guarded by ctx_mu_

  /// Set by the destructor before draining: remaining queued requests
  /// complete as Cancelled instead of evaluating.
  std::atomic<bool> shutdown_{false};

  AdmissionQueue queue_;

  /// Pause state: while paused, admissions accumulate pending_drains_
  /// instead of dispatching executor tasks; Resume() dispatches them.
  std::mutex pause_mu_;
  bool paused_;                // guarded by pause_mu_
  size_t pending_drains_ = 0;  // guarded by pause_mu_

  std::atomic<size_t> queries_{0};
  std::atomic<size_t> cache_hits_{0};
  std::atomic<size_t> maintained_hits_{0};
  std::atomic<size_t> planner_short_circuits_{0};
  std::atomic<size_t> compressed_evals_{0};
  std::atomic<size_t> direct_evals_{0};
  std::atomic<size_t> rejected_{0};
  std::atomic<size_t> rejected_overload_{0};
  std::atomic<size_t> cancelled_{0};
  std::atomic<size_t> query_batches_{0};
  std::atomic<size_t> batches_applied_{0};
  std::atomic<size_t> updates_applied_{0};
  std::atomic<size_t> nodes_added_{0};
  std::atomic<size_t> snapshots_published_{0};
  std::atomic<size_t> snapshot_acquires_{0};
  std::atomic<size_t> snapshots_retired_{0};
  std::atomic<size_t> topic_index_builds_{0};
  std::atomic<size_t> posting_hits_{0};
  std::atomic<size_t> seed_scan_fallbacks_{0};
  std::atomic<size_t> wal_appends_{0};
  std::atomic<size_t> checkpoints_written_{0};
  std::atomic<size_t> durability_errors_{0};
  std::atomic<size_t> data_loss_events_{0};
  /// At most one periodic checkpoint runs at a time; the flag is cleared
  /// by the checkpoint task itself.
  std::atomic<bool> checkpoint_inflight_{false};
  std::array<std::atomic<size_t>, kQueueLatencyBuckets> queue_latency_{};

  /// Replication (null / unused when replication.num_replicas == 0).
  /// Declared before executor_ so destruction order is: executor (serving
  /// workers, which call fleet_->Acquire) drains first, then the fleet
  /// joins its appliers, then the (possibly fault-wrapped) source they
  /// fetch from dies.
  std::unique_ptr<InProcessDeltaSource> delta_source_;
  /// Fault-injecting decorator over delta_source_; null unless
  /// replication.delta_faults has any probability set. When present the
  /// fleet fetches through it.
  std::unique_ptr<FaultyDeltaSource> faulty_source_;
  std::unique_ptr<ReplicaFleet> fleet_;
  /// Delta cursor when durability is off (the WAL assigns LSNs otherwise);
  /// guarded by writer_mu_.
  uint64_t ship_lsn_ = 0;
  std::atomic<size_t> deltas_shipped_{0};
  std::atomic<size_t> routed_reads_{0};
  std::atomic<size_t> routed_fallbacks_{0};
  std::atomic<size_t> retried_reads_{0};
  std::atomic<size_t> hedged_reads_{0};
  std::atomic<size_t> relaxed_reads_{0};
  std::atomic<size_t> unavailable_{0};

  /// The serving executor: one Submit()ed drain task per admitted request.
  /// Declared last so it is destroyed (and drained) while every member it
  /// uses is still alive; sized serving_threads + 1 because a ThreadPool
  /// of size W has W - 1 background threads.
  std::unique_ptr<ThreadPool> executor_;
};

}  // namespace expfinder

#endif  // EXPFINDER_SERVICE_EXPFINDER_SERVICE_H_
