// ExpFinderService: the concurrent serving facade over QueryEngine (paper
// §II, Fig. 2 — a query engine serving many analysts at once; ROADMAP north
// star: heavy traffic from millions of users).
//
// Concurrency model — reader/writer isolation:
//
//   * Any number of Query / QueryBatch calls run concurrently. Each takes
//     the reader side of a shared_mutex, so all of them observe one
//     immutable published graph snapshot; the graph version a response
//     reports is exactly the version its relation was computed against.
//   * Mutate / AddNode / RegisterMaintainedQuery / CompressNow take the
//     writer side: they wait for in-flight queries, apply atomically, and
//     bump the graph version. A batch is all-or-nothing; readers never see
//     a half-applied batch.
//   * Each concurrent query borrows a worker MatchContext pair from a pool
//     (contexts are single-owner scratch; see match_context.h), so the
//     matchers' CSR snapshot cache and BFS buffers are never shared between
//     threads. The shared ResultCache has its own mutex; QueryAnswers are
//     shared_ptr<const>, immutable once published. Service stats are
//     atomics.
//
// QueryEngine remains the single-threaded core: the service composes it,
// calling its const, context-parameterized EvaluateWith from readers and
// its mutating operations from writers.

#ifndef EXPFINDER_SERVICE_EXPFINDER_SERVICE_H_
#define EXPFINDER_SERVICE_EXPFINDER_SERVICE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string_view>
#include <utility>
#include <vector>

#include "src/engine/query_engine.h"
#include "src/service/service_types.h"
#include "src/util/thread_pool.h"

namespace expfinder {

/// \brief Service configuration: the composed engine's options plus the
/// service-level knobs.
struct ServiceOptions {
  /// Options of the underlying engine. `use_cache`/`cache_capacity`
  /// configure the *service's* shared result cache (the inner engine's own
  /// cache is disabled — the service serves all cached reads itself).
  EngineOptions engine;
  /// Worker threads for QueryBatch fan-out (0 = hardware_concurrency).
  /// Independent of EngineOptions::match_threads, which parallelizes
  /// *within* one matcher; batch workloads usually want match_threads = 1
  /// so requests, not seeding phases, use the cores.
  uint32_t batch_threads = 0;
};

/// \brief Thread-safe expert-finding service with a typed request/response
/// API, snapshot-isolated reads, and batch evaluation.
class ExpFinderService {
 public:
  /// `g` must outlive the service; the service mutates it in Mutate/AddNode.
  /// No other code may mutate `g` while the service exists.
  explicit ExpFinderService(Graph* g, ServiceOptions options = {});

  ExpFinderService(const ExpFinderService&) = delete;
  ExpFinderService& operator=(const ExpFinderService&) = delete;

  const ServiceOptions& options() const { return options_; }

  /// Answers one request. Thread-safe; runs concurrently with other Query /
  /// QueryBatch calls and serializes against Mutate.
  Result<QueryResponse> Query(const QueryRequest& request);

  /// Answers a batch of requests, fanned out over the service's thread
  /// pool; results are positionally aligned with `requests` and each
  /// request succeeds or fails independently. All responses of one batch
  /// are NOT guaranteed to share a graph version — each request is
  /// individually snapshot-consistent (its relation matches the version it
  /// reports), but a concurrent Mutate may land between two of them.
  std::vector<Result<QueryResponse>> QueryBatch(
      const std::vector<QueryRequest>& requests);

  /// Applies a batch of edge updates atomically: waits for in-flight
  /// queries, validates (on failure nothing changes), maintains registered
  /// queries and the compressed graph, bumps the version.
  Status Mutate(const UpdateBatch& batch);

  /// Adds a person to the network (no edges yet; connect via Mutate).
  Result<NodeId> AddNode(
      std::string_view label,
      const std::vector<std::pair<std::string, AttrValue>>& attrs = {});

  /// Registers Q as an incrementally maintained query (writer-side: the
  /// initial relation is computed under the exclusive lock).
  Status RegisterMaintainedQuery(
      const Pattern& q,
      MatchSemantics semantics = MatchSemantics::kBoundedSimulation);
  bool IsMaintained(const Pattern& q,
                    MatchSemantics semantics = MatchSemantics::kBoundedSimulation) const;

  /// (Re)builds the compressed graph now (writer-side; no-op when current).
  Status CompressNow();
  /// The compressed graph, or nullptr when not built. The pointee is only
  /// stable while no Mutate/CompressNow runs — single-threaded inspection
  /// use only.
  const CompressedGraph* compressed() const { return engine_.compressed(); }

  /// The underlying graph. Reading it is safe while no Mutate/AddNode is in
  /// flight (e.g. single-threaded sections, display code); the service
  /// itself never hands it to request threads.
  const Graph& graph() const { return *g_; }

  /// Current graph version (consistent snapshot read).
  uint64_t version() const;

  /// Snapshot of the cumulative counters.
  ServiceStats stats() const;

 private:
  /// Per-worker scratch: one context for evaluation over G, one over Gc, so
  /// a worker alternating direct/compressed queries doesn't thrash one
  /// snapshot slot.
  struct WorkerContext {
    MatchContext direct;
    MatchContext compressed;
  };

  /// RAII borrow of a WorkerContext from the free pool (creates one when
  /// the pool is empty, returns it on destruction).
  class ContextLease {
   public:
    explicit ContextLease(ExpFinderService* service);
    ~ContextLease();
    WorkerContext& ctx() { return *ctx_; }

   private:
    ExpFinderService* service_;
    std::unique_ptr<WorkerContext> ctx_;
  };

  Graph* g_;
  ServiceOptions options_;

  /// Readers (Query/QueryBatch) hold shared; writers (Mutate/AddNode/
  /// RegisterMaintainedQuery/CompressNow) hold exclusive.
  mutable std::shared_mutex state_mu_;
  QueryEngine engine_;

  mutable std::mutex cache_mu_;
  ResultCache cache_;  // guarded by cache_mu_

  std::mutex ctx_mu_;
  std::vector<std::unique_ptr<WorkerContext>> idle_contexts_;  // guarded by ctx_mu_

  /// Serializes QueryBatch fan-outs (ThreadPool::ParallelChunks is not
  /// reentrant); individual Query calls are unaffected.
  std::mutex batch_mu_;
  std::unique_ptr<ThreadPool> batch_pool_;  // guarded by batch_mu_, lazy

  std::atomic<size_t> queries_{0};
  std::atomic<size_t> cache_hits_{0};
  std::atomic<size_t> maintained_hits_{0};
  std::atomic<size_t> planner_short_circuits_{0};
  std::atomic<size_t> compressed_evals_{0};
  std::atomic<size_t> direct_evals_{0};
  std::atomic<size_t> rejected_{0};
  std::atomic<size_t> query_batches_{0};
  std::atomic<size_t> batches_applied_{0};
  std::atomic<size_t> updates_applied_{0};
  std::atomic<size_t> nodes_added_{0};
};

}  // namespace expfinder

#endif  // EXPFINDER_SERVICE_EXPFINDER_SERVICE_H_
