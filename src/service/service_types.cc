#include "src/service/service_types.h"

#include <sstream>

namespace expfinder {

std::string_view ServingPathName(ServingPath path) {
  switch (path) {
    case ServingPath::kCache: return "cache";
    case ServingPath::kMaintained: return "maintained";
    case ServingPath::kPlannerShortCircuit: return "planner_short_circuit";
    case ServingPath::kCompressed: return "compressed";
    case ServingPath::kDirect: return "direct";
  }
  return "unknown";
}

std::string ServiceStats::ToString() const {
  std::ostringstream os;
  os << "queries=" << queries << " cache_hits=" << cache_hits
     << " maintained_hits=" << maintained_hits
     << " planner_short_circuits=" << planner_short_circuits
     << " compressed_evals=" << compressed_evals << " direct_evals=" << direct_evals
     << " rejected=" << rejected << " query_batches=" << query_batches
     << " batches=" << batches_applied << " updates=" << updates_applied
     << " nodes_added=" << nodes_added;
  return os.str();
}

}  // namespace expfinder
