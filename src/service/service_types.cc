#include "src/service/service_types.h"

#include <chrono>
#include <sstream>

namespace expfinder {

std::string_view ServingPathName(ServingPath path) {
  switch (path) {
    case ServingPath::kCache: return "cache";
    case ServingPath::kMaintained: return "maintained";
    case ServingPath::kPlannerShortCircuit: return "planner_short_circuit";
    case ServingPath::kCompressed: return "compressed";
    case ServingPath::kDirect: return "direct";
  }
  return "unknown";
}

std::string_view QueryPriorityName(QueryPriority priority) {
  switch (priority) {
    case QueryPriority::kBackground: return "background";
    case QueryPriority::kNormal: return "normal";
    case QueryPriority::kInteractive: return "interactive";
  }
  return "unknown";
}

void CompleteTicket(const std::shared_ptr<TicketState>& state,
                    Result<QueryResponse> result) {
  std::function<void(const Result<QueryResponse>&)> callback;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    EF_DCHECK(!state->done && !state->result) << "ticket completed twice";
    state->result.emplace(std::move(result));  // immutable from here on
    callback = std::move(state->callback);
    state->callback = nullptr;
  }
  // Callback first (outside the lock), and only then publish `done`: a
  // waiter in Wait()/Get() — even one woken spuriously — cannot observe a
  // completed ticket whose callback has not finished.
  if (callback) callback(*state->result);
  std::function<void(const Result<QueryResponse>&)> late_callback;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->done = true;
    // An OnComplete that raced into the window above registered itself
    // while `done` was still false; it fires now, before waiters wake.
    late_callback = std::move(state->callback);
    state->callback = nullptr;
  }
  if (late_callback) late_callback(*state->result);
  state->cv.notify_all();
}

bool QueryTicket::done() const {
  EF_DCHECK(valid());
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

void QueryTicket::Wait() const {
  EF_DCHECK(valid());
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
}

std::optional<Result<QueryResponse>> QueryTicket::TryGet(double timeout_ms) const {
  EF_DCHECK(valid());
  std::unique_lock<std::mutex> lock(state_->mu);
  if (timeout_ms > 0.0) {
    state_->cv.wait_for(lock, std::chrono::duration<double, std::milli>(timeout_ms),
                        [&] { return state_->done; });
  }
  if (!state_->done) return std::nullopt;
  return *state_->result;
}

Result<QueryResponse> QueryTicket::Get() const {
  Wait();
  std::lock_guard<std::mutex> lock(state_->mu);
  return *state_->result;
}

bool QueryTicket::Cancel() {
  if (!valid()) return false;
  state_->cancelled.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(state_->mu);
  return !state_->done;
}

void QueryTicket::OnComplete(
    std::function<void(const Result<QueryResponse>&)> callback) {
  EF_DCHECK(valid());
  bool fire_inline = false;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    EF_DCHECK(!state_->callback) << "at most one OnComplete per ticket";
    if (state_->done) {
      fire_inline = true;
    } else {
      state_->callback = std::move(callback);
    }
  }
  if (fire_inline) callback(*state_->result);
}

size_t QueueLatencyBucket(double queue_ms) {
  size_t bucket = 0;
  double upper = 1.0;  // bucket 0: < 1 ms
  while (bucket + 1 < kQueueLatencyBuckets && queue_ms >= upper) {
    ++bucket;
    upper *= 2.0;
  }
  return bucket;
}

std::string ServiceStats::ToString() const {
  std::ostringstream os;
  os << "queries=" << queries << " cache_hits=" << cache_hits
     << " maintained_hits=" << maintained_hits
     << " planner_short_circuits=" << planner_short_circuits
     << " compressed_evals=" << compressed_evals << " direct_evals=" << direct_evals
     << " rejected=" << rejected << " rejected_overload=" << rejected_overload
     << " cancelled=" << cancelled << " unavailable=" << unavailable
     << " queued=" << queued << " queued_by_lane=[";
  for (size_t lane = 0; lane < queued_by_priority.size(); ++lane) {
    if (lane > 0) os << " ";
    os << QueryPriorityName(static_cast<QueryPriority>(lane)) << ":"
       << queued_by_priority[lane];
  }
  os << "]"
     << " query_batches=" << query_batches << " batches=" << batches_applied
     << " updates=" << updates_applied << " nodes_added=" << nodes_added
     << " snapshots_published=" << snapshots_published
     << " snapshot_acquires=" << snapshot_acquires
     << " snapshots_retired=" << snapshots_retired
     << " wal_appends=" << wal_appends
     << " checkpoints_written=" << checkpoints_written
     << " recovered_records=" << recovered_records
     << " durability_errors=" << durability_errors
     << " data_loss_events=" << data_loss_events
     << " topic_index_builds=" << topic_index_builds
     << " posting_hits=" << posting_hits
     << " seed_scan_fallbacks=" << seed_scan_fallbacks
     << " deltas_shipped=" << deltas_shipped
     << " deltas_applied=" << deltas_applied
     << " routed_reads=" << routed_reads
     << " routed_fallbacks=" << routed_fallbacks
     << " retried_reads=" << retried_reads << " hedged_reads=" << hedged_reads
     << " relaxed_reads=" << relaxed_reads
     << " replica_rebootstraps=" << replica_rebootstraps
     << " replica_quarantines=" << replica_quarantines
     << " replica_auto_restarts=" << replica_auto_restarts;
  if (!replicas.empty()) {
    os << " replicas=[";
    for (size_t i = 0; i < replicas.size(); ++i) {
      const ReplicaStatus& r = replicas[i];
      if (i > 0) os << " ";
      os << "r" << r.id << ":"
         << (r.alive ? "up" : r.quarantined ? "quarantined" : "down") << ",v"
         << r.version << ",lag" << r.lag << ",reads" << r.routed_reads;
    }
    os << "]";
  }
  os << " queue_latency_ms=[";
  for (size_t i = 0; i < queue_latency_histogram.size(); ++i) {
    if (i > 0) os << " ";
    os << queue_latency_histogram[i];
  }
  os << "]";
  return os.str();
}

}  // namespace expfinder
