// The typed request/response surface of the ExpFinder serving API (paper
// §II, Fig. 2: the query engine behind a GUI that many analysts hit
// concurrently). A whole request — pattern, semantics, ranking, priority,
// and per-request knobs — is one value; submission returns a QueryTicket
// (a future-like handle), and the response carries the shared immutable
// answer plus how it was served and what it cost.

#ifndef EXPFINDER_SERVICE_SERVICE_TYPES_H_
#define EXPFINDER_SERVICE_SERVICE_TYPES_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/engine/query_engine.h"
#include "src/ranking/metrics.h"
#include "src/ranking/social_impact.h"
#include "src/replication/fleet.h"

namespace expfinder {

/// \brief How a query was served, one label per serving path. Extends the
/// engine's EvalPath with the two paths that bypass evaluation entirely.
enum class ServingPath {
  /// Answer returned from the result cache (same pattern, same semantics,
  /// same graph version).
  kCache,
  /// Snapshot of an incrementally maintained query.
  kMaintained,
  /// The planner proved the query unsatisfiable; no fixpoint ran.
  kPlannerShortCircuit,
  /// Evaluated on the compressed graph Gc and decompressed.
  kCompressed,
  /// Direct (bounded/dual) simulation on G.
  kDirect,
};

/// Stable lower-case name ("cache", "maintained", ...).
std::string_view ServingPathName(ServingPath path);

/// \brief Admission priority of a request. Strict: a queued higher-priority
/// request is always dequeued before any lower-priority one; within one
/// priority the queue is FIFO. Priority affects queue order only — it never
/// preempts a running evaluation.
enum class QueryPriority : uint8_t {
  /// Bulk/analytics work that should yield to everything else.
  kBackground = 0,
  /// The default.
  kNormal = 1,
  /// Latency-sensitive interactive queries.
  kInteractive = 2,
};

inline constexpr size_t kNumQueryPriorities = 3;

/// Stable lower-case name ("background", "normal", "interactive").
std::string_view QueryPriorityName(QueryPriority priority);

/// \brief One expert-finding request: everything the service needs to
/// answer, as a single value.
struct QueryRequest {
  /// The pattern query (required; must Validate()).
  Pattern pattern;
  /// Matching semantics. Dual simulation is never served from the
  /// compressed graph or from maintained bounded-simulation state.
  MatchSemantics semantics = MatchSemantics::kBoundedSimulation;
  /// Admission-queue priority (see QueryPriority).
  QueryPriority priority = QueryPriority::kNormal;
  /// When set, the response carries the top-K ranked output-node matches.
  std::optional<size_t> top_k;
  /// Ranking metric used when top_k is set.
  RankingMetric metric = RankingMetric::kSocialImpact;
  /// Per-request cache override; absent = the service's configured default.
  std::optional<bool> use_cache;
  /// Per-request matcher seeding threads; absent = engine default
  /// (see EngineOptions::match_threads).
  std::optional<uint32_t> match_threads;
  /// Per-request ball-index participation; absent = engine default (see
  /// EngineOptions::ball_index). Disabling forces the BFS traversal paths
  /// for this request only — the answer is identical, the cached index
  /// stays warm for other requests. A debugging / A-B measurement knob.
  std::optional<bool> use_ball_index;
  /// Free-text expertise terms — the "find experts about X" entry point.
  /// Tokenized (TopicTokens) and compiled into conjunctive
  /// `* has_token "<token>"` predicates on the pattern's output node, so the
  /// served relation is exactly M(Q', G) for the compiled pattern Q' — every
  /// stage (evaluation, caching, ranking, as_of serving) sees Q'. Seeding
  /// draws candidates from the topic inverted index when built (see
  /// index/topic_index.h; identical answers either way). With
  /// metric == kTopicFusion the ranked list orders by fused TF-IDF topic
  /// relevance + structure (ranking/fusion.h) instead of structure alone.
  std::vector<std::string> topic_terms;
  /// Per-request topic-index participation; absent = engine default (see
  /// EngineOptions::topic_index). Like use_ball_index this never changes
  /// the relation — only the seeding cost. A debugging / A-B knob.
  std::optional<bool> use_topic_index;
  /// Pin the evaluation to a specific published graph version instead of
  /// the current epoch. Served from the service's retained-snapshot ring
  /// (ServiceOptions::retained_snapshots): the relation is exactly
  /// M(Q, G@as_of_version) no matter how many Mutates landed since. A
  /// version no longer retained (evicted, or never published) fails the
  /// request with Status::NotFound. Absent = the current epoch.
  std::optional<uint64_t> as_of_version;
  /// Bounded-staleness floor for replica-routed reads (read-your-writes:
  /// pass the graph_version a previous response — or the version observed
  /// after a Mutate — reported). The read is served from a snapshot with
  /// version >= min_version, waiting up to
  /// ReplicationOptions::max_staleness_wait_ms for a replica to catch up;
  /// if none does, the service falls back to the primary epoch (when
  /// fallback_to_primary) or fails with Status::DeadlineExceeded. With
  /// replication off the primary epoch either satisfies the floor
  /// immediately or the request fails — no waiting. Mutually exclusive with
  /// as_of_version (a floor and an exact pin contradict each other).
  /// Absent/0 = any version (the freshest available snapshot).
  std::optional<uint64_t> min_version;
  /// Soft time budget in milliseconds, counted from Submit (queue wait
  /// included); 0 = unlimited. Best-effort: checked when the request is
  /// dequeued and at evaluation stage boundaries, never preemptively inside
  /// a running fixpoint. A budget that expires while the request is still
  /// queued fails it with Status::DeadlineExceeded without ever touching
  /// the engine (a warm cache hit is still served — it costs no
  /// evaluation).
  double time_budget_ms = 0.0;
};

/// \brief The answer to one QueryRequest.
struct QueryResponse {
  /// The match relation + result graph, shared and immutable (cache hits
  /// return the same object the original evaluation produced).
  std::shared_ptr<const QueryAnswer> answer;
  /// Top-K ranked matches; filled iff the request set top_k.
  std::vector<RankedMatch> ranked;
  /// Which serving path produced `answer`.
  ServingPath path = ServingPath::kDirect;
  /// Graph version the answer is consistent with (snapshot isolation: the
  /// relation is exactly M(Q, G@graph_version)).
  uint64_t graph_version = 0;
  /// Time spent in the admission queue before a worker picked the request
  /// up.
  double queue_ms = 0.0;
  /// Wall time from Submit to completion, end to end (queue wait included).
  double eval_ms = 0.0;
};

/// \brief Shared state behind a QueryTicket. Internal to the service layer;
/// user code holds QueryTickets, never TicketStates.
struct TicketState {
  std::mutex mu;
  std::condition_variable cv;
  /// Set exactly once, before `done`; immutable once engaged (readers
  /// copy).
  std::optional<Result<QueryResponse>> result;  // guarded by mu until done
  bool done = false;                            // guarded by mu
  /// Invoked exactly once with the final result (on the completing thread,
  /// or inline when registered after completion).
  std::function<void(const Result<QueryResponse>&)> callback;  // guarded by mu
  /// Cooperative cancellation flag, polled lock-free at stage boundaries.
  std::atomic<bool> cancelled{false};
};

/// Publishes `result` on the ticket: stores it, runs the completion
/// callback (if any) on the calling thread, then releases waiters.
void CompleteTicket(const std::shared_ptr<TicketState>& state,
                    Result<QueryResponse> result);

/// \brief Move-only handle to one submitted request — the future half of
/// ExpFinderService::Submit. All methods are thread-safe; the ticket may
/// outlive the service (a shutdown completes every pending ticket as
/// Cancelled).
class QueryTicket {
 public:
  /// An empty ticket (valid() == false); Submit returns engaged ones.
  QueryTicket() = default;
  explicit QueryTicket(std::shared_ptr<TicketState> state)
      : state_(std::move(state)) {}

  QueryTicket(QueryTicket&&) = default;
  QueryTicket& operator=(QueryTicket&&) = default;
  QueryTicket(const QueryTicket&) = delete;
  QueryTicket& operator=(const QueryTicket&) = delete;

  bool valid() const { return state_ != nullptr; }

  /// True once the request reached a terminal state (response or error).
  bool done() const;

  /// Blocks until the request completes.
  void Wait() const;

  /// Waits up to `timeout_ms` (0 = just poll); returns the result when the
  /// request completed in time, std::nullopt on timeout. Repeatable — the
  /// result is copied out, not consumed.
  std::optional<Result<QueryResponse>> TryGet(double timeout_ms) const;

  /// Wait() + copy of the result.
  Result<QueryResponse> Get() const;

  /// Requests cooperative cancellation: a still-queued request completes
  /// as Cancelled without touching the engine (when it is dequeued — on a
  /// paused service that happens at Resume() or destruction, so Wait()
  /// after Cancel() can still block until then); a running evaluation
  /// stops at its next stage boundary. Returns true when the request had
  /// not yet completed (the cancel may take effect), false when it
  /// already had (the existing result stands). Idempotent.
  bool Cancel();

  /// Registers a completion callback, invoked exactly once with the final
  /// result: on the completing thread (before waiters already blocked in
  /// Wait()/Get() are released), or inline right here when the ticket is
  /// already done. At most one callback per ticket. The callback runs on a
  /// serving worker — keep it cheap, and never block it on other tickets
  /// of the same service.
  void OnComplete(std::function<void(const Result<QueryResponse>&)> callback);

  /// The underlying shared state (service-internal).
  const std::shared_ptr<TicketState>& state() const { return state_; }

 private:
  std::shared_ptr<TicketState> state_;
};

/// Number of buckets in the queue-latency histogram: bucket i counts
/// dequeues whose queue wait fell in [2^(i-1), 2^i) milliseconds (bucket 0:
/// < 1 ms), with the last bucket catching everything longer.
inline constexpr size_t kQueueLatencyBuckets = 12;

/// Bucket index for one observed queue latency.
size_t QueueLatencyBucket(double queue_ms);

/// \brief Cumulative service telemetry (a plain snapshot; the live counters
/// are atomics inside the service).
///
/// Every submitted request lands in exactly one terminal counter:
///   * requests that produced no answer (validation failure, queue or
///     pre-eval deadline, evaluation error) count in `rejected`;
///   * requests refused at Submit because the admission queue was full
///     count in `rejected_overload`;
///   * requests cancelled before their evaluation completed (while queued
///     or at an evaluation stage boundary) count in `cancelled`;
///   * reads refused because the replica fleet was down/unrecoverable and
///     the primary could not cover them count in `unavailable` (PR 10 —
///     Status::kUnavailable, "route away", vs a `rejected` deadline miss,
///     "waited and lost");
///   * anything that completed evaluation keeps its serving-path
///     classification even if a later stage (ranking, post-eval deadline or
///     cancel) fails the request.
/// So
///   queries == cache_hits + maintained_hits + planner_short_circuits +
///              compressed_evals + direct_evals + rejected +
///              rejected_overload + cancelled + unavailable
/// holds whenever the service is quiescent.
struct ServiceStats {
  size_t queries = 0;
  size_t cache_hits = 0;
  size_t maintained_hits = 0;
  size_t planner_short_circuits = 0;
  size_t compressed_evals = 0;
  size_t direct_evals = 0;
  size_t rejected = 0;
  size_t rejected_overload = 0;
  size_t cancelled = 0;
  size_t unavailable = 0;
  size_t query_batches = 0;
  size_t batches_applied = 0;
  size_t updates_applied = 0;
  size_t nodes_added = 0;
  /// Snapshot lifecycle (none of these enter ClassifiedQueries):
  /// engine states published through the epoch pointer, reader pins of a
  /// published snapshot (one per served request — the acquire overhead the
  /// bench tracks), and snapshots evicted from the retained ring.
  size_t snapshots_published = 0;
  size_t snapshot_acquires = 0;
  size_t snapshots_retired = 0;
  /// Durability telemetry (ServiceOptions::durability; all zero when
  /// durability is off, none enter ClassifiedQueries):
  /// WAL records successfully appended (one per acknowledged Mutate /
  /// AddNode), checkpoints written, WAL records replayed at boot, failed
  /// durability operations (WAL append or checkpoint — the mutation stayed
  /// in memory but is NOT durable, and Mutate reported the error), and
  /// recoveries that detected unrecoverable loss (mid-log corruption,
  /// all-checkpoints-corrupt; the service degrades to the best available
  /// prefix and keeps serving instead of aborting).
  size_t wal_appends = 0;
  size_t checkpoints_written = 0;
  size_t recovered_records = 0;
  size_t durability_errors = 0;
  size_t data_loss_events = 0;
  /// Topic-index telemetry (mirrors the EngineStats trio; none enter
  /// ClassifiedQueries): inverted-index builds paid by serving workers,
  /// pattern nodes seeded from a posting list, and pattern nodes with text
  /// predicates that scanned anyway.
  size_t topic_index_builds = 0;
  size_t posting_hits = 0;
  size_t seed_scan_fallbacks = 0;
  /// Replication telemetry (ServiceOptions::replication; all zero/empty
  /// when replication is off, none enter ClassifiedQueries): delta records
  /// the primary shipped into the in-process stream, delta records applied
  /// across the fleet, reads served from a replica snapshot, reads that
  /// wanted a replica but fell back to the primary epoch (no replica
  /// satisfied the staleness floor in time), and replica re-anchors
  /// (checkpoint/snapshot re-installs after a lost prefix or gap).
  size_t deltas_shipped = 0;
  size_t deltas_applied = 0;
  size_t routed_reads = 0;
  size_t routed_fallbacks = 0;
  size_t replica_rebootstraps = 0;
  /// Read-resilience ladder telemetry (PR 10; none enter ClassifiedQueries
  /// — each ladder rung is a routing attempt inside one read, and the read
  /// itself still lands in exactly one terminal counter): retries after a
  /// timed-out pick, hedged second reads, floors served relaxed
  /// (bounded-stale), and watchdog activity across the fleet (quarantines
  /// entered, auto-restarts completed).
  size_t retried_reads = 0;
  size_t hedged_reads = 0;
  size_t relaxed_reads = 0;
  size_t replica_quarantines = 0;
  size_t replica_auto_restarts = 0;
  /// Per-replica state at the moment stats() was taken (empty when
  /// replication is off); id order.
  std::vector<ReplicaStatus> replicas;
  /// Requests sitting in the admission queue right now (a gauge, not a
  /// cumulative counter; excluded from ClassifiedQueries).
  size_t queued = 0;
  /// `queued` split by priority lane, indexed by QueryPriority — one
  /// coherent snapshot (the lanes sum to a single instant's depth, though
  /// `queued` itself is sampled separately).
  std::array<size_t, kNumQueryPriorities> queued_by_priority{};
  /// Queue-wait distribution over every dequeued request (see
  /// QueueLatencyBucket). Sums to the number of requests that reached a
  /// serving worker.
  std::array<size_t, kQueueLatencyBuckets> queue_latency_histogram{};

  /// Sum of the per-outcome counters; equals `queries` when quiescent.
  size_t ClassifiedQueries() const {
    return cache_hits + maintained_hits + planner_short_circuits +
           compressed_evals + direct_evals + rejected + rejected_overload +
           cancelled + unavailable;
  }

  std::string ToString() const;
};

}  // namespace expfinder

#endif  // EXPFINDER_SERVICE_SERVICE_TYPES_H_
