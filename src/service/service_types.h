// The typed request/response surface of the ExpFinder serving API (paper
// §II, Fig. 2: the query engine behind a GUI that many analysts hit
// concurrently). A whole request — pattern, semantics, ranking, and
// per-request knobs — is one value, and a response carries the shared
// immutable answer plus how it was served and what it cost.

#ifndef EXPFINDER_SERVICE_SERVICE_TYPES_H_
#define EXPFINDER_SERVICE_SERVICE_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/engine/query_engine.h"
#include "src/ranking/metrics.h"
#include "src/ranking/social_impact.h"

namespace expfinder {

/// \brief How a query was served, one label per serving path. Extends the
/// engine's EvalPath with the two paths that bypass evaluation entirely.
enum class ServingPath {
  /// Answer returned from the result cache (same pattern, same semantics,
  /// same graph version).
  kCache,
  /// Snapshot of an incrementally maintained query.
  kMaintained,
  /// The planner proved the query unsatisfiable; no fixpoint ran.
  kPlannerShortCircuit,
  /// Evaluated on the compressed graph Gc and decompressed.
  kCompressed,
  /// Direct (bounded/dual) simulation on G.
  kDirect,
};

/// Stable lower-case name ("cache", "maintained", ...).
std::string_view ServingPathName(ServingPath path);

/// \brief One expert-finding request: everything the service needs to
/// answer, as a single value.
struct QueryRequest {
  /// The pattern query (required; must Validate()).
  Pattern pattern;
  /// Matching semantics. Dual simulation is never served from the
  /// compressed graph or from maintained bounded-simulation state.
  MatchSemantics semantics = MatchSemantics::kBoundedSimulation;
  /// When set, the response carries the top-K ranked output-node matches.
  std::optional<size_t> top_k;
  /// Ranking metric used when top_k is set.
  RankingMetric metric = RankingMetric::kSocialImpact;
  /// Per-request cache override; absent = the service's configured default.
  std::optional<bool> use_cache;
  /// Per-request matcher seeding threads; absent = engine default
  /// (see EngineOptions::match_threads).
  std::optional<uint32_t> match_threads;
  /// Soft time budget in milliseconds; 0 = unlimited. Best-effort: the
  /// budget is checked at stage boundaries (before evaluation, before
  /// ranking), not preemptively inside a running fixpoint. Exceeding it
  /// fails the request with Status::DeadlineExceeded.
  double time_budget_ms = 0.0;
};

/// \brief The answer to one QueryRequest.
struct QueryResponse {
  /// The match relation + result graph, shared and immutable (cache hits
  /// return the same object the original evaluation produced).
  std::shared_ptr<const QueryAnswer> answer;
  /// Top-K ranked matches; filled iff the request set top_k.
  std::vector<RankedMatch> ranked;
  /// Which serving path produced `answer`.
  ServingPath path = ServingPath::kDirect;
  /// Graph version the answer is consistent with (snapshot isolation: the
  /// relation is exactly M(Q, G@graph_version)).
  uint64_t graph_version = 0;
  /// Wall time spent on this request, end to end.
  double eval_ms = 0.0;
};

/// \brief Cumulative service telemetry (a plain snapshot; the live counters
/// are atomics inside the service).
///
/// Every query lands in exactly one counter: requests that produced no
/// answer (validation failure, pre-eval deadline, evaluation error) count
/// in `rejected`; anything that completed evaluation keeps its serving-path
/// classification even if a later stage (ranking, post-eval deadline) fails
/// the request. So
///   queries == cache_hits + maintained_hits + planner_short_circuits +
///              compressed_evals + direct_evals + rejected
/// holds whenever the service is quiescent.
struct ServiceStats {
  size_t queries = 0;
  size_t cache_hits = 0;
  size_t maintained_hits = 0;
  size_t planner_short_circuits = 0;
  size_t compressed_evals = 0;
  size_t direct_evals = 0;
  size_t rejected = 0;
  size_t query_batches = 0;
  size_t batches_applied = 0;
  size_t updates_applied = 0;
  size_t nodes_added = 0;

  /// Sum of the per-outcome counters; equals `queries` when quiescent.
  size_t ClassifiedQueries() const {
    return cache_hits + maintained_hits + planner_short_circuits +
           compressed_evals + direct_evals + rejected;
  }

  std::string ToString() const;
};

}  // namespace expfinder

#endif  // EXPFINDER_SERVICE_SERVICE_TYPES_H_
