// Dynamic maintenance of compressed graphs (paper §II: "Gc is incrementally
// maintained in response to changes to G"; §III: maintenance "outperforms
// the method that recomputes compressed graphs, even when large batch
// updates are incurred").
//
// Strategy: signature refinement is restarted *from the current partition*
// after updates. Splits re-stabilize the partition in a handful of passes
// (vs. the full refinement depth from the schema partition). Deletions can
// make the coarsest partition coarser than ours — the partition stays a
// valid bisimulation (query preservation holds; tests verify), only the
// compression ratio degrades — so a full rebuild is triggered when the
// block count drifts beyond a configurable factor.

#ifndef EXPFINDER_COMPRESSION_MAINTENANCE_H_
#define EXPFINDER_COMPRESSION_MAINTENANCE_H_

#include "src/compression/compressed_graph.h"
#include "src/incremental/update.h"
#include "src/util/result.h"

namespace expfinder {

/// \brief Keeps a CompressedGraph in sync with its source graph.
class MaintainedCompression {
 public:
  /// Builds the initial compressed graph (bisimulation mode — the only mode
  /// that is maintainable by pure refinement).
  static Result<MaintainedCompression> Create(const Graph* g, CompressionSchema schema,
                                              double rebuild_factor = 1.5);

  const CompressedGraph& current() const { return cg_; }

  /// Re-stabilizes after the source graph has been mutated by `batch`
  /// (localized: only blocks reachable backwards from touched edge sources
  /// are re-split). Returns the number of blocks created (0 = already
  /// stable). Triggers a full rebuild when blocks drift past
  /// rebuild_factor x the last full build.
  size_t OnGraphUpdated(const UpdateBatch& batch);

  /// Batch-agnostic variant for callers that do not know which edges
  /// changed: runs full signature-refinement passes from the current
  /// partition instead of the localized worklist.
  size_t OnGraphUpdated();

  /// Unconditional recompression from the schema partition.
  void Rebuild();

  /// Extends the partition after the source graph grew by one (edge-less)
  /// node: the newcomer gets a singleton class (sound — possibly finer than
  /// the coarsest partition until the next Rebuild).
  void OnNodeAdded(NodeId v);

  size_t num_maintenances() const { return num_maintenances_; }
  size_t num_rebuilds() const { return num_rebuilds_; }

 private:
  MaintainedCompression(const Graph* g, CompressionSchema schema, double rebuild_factor)
      : g_(g), schema_(std::move(schema)), rebuild_factor_(rebuild_factor) {}

  const Graph* g_;
  CompressionSchema schema_;
  double rebuild_factor_;
  CompressedGraph cg_;
  uint32_t blocks_at_last_rebuild_ = 0;
  size_t num_maintenances_ = 0;
  size_t num_rebuilds_ = 0;
};

}  // namespace expfinder

#endif  // EXPFINDER_COMPRESSION_MAINTENANCE_H_
