#include "src/compression/compressed_graph.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/compression/sim_equivalence.h"
#include "src/util/dense_bitset.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace expfinder {

Partition SchemaPartition(const Graph& g, const CompressionSchema& schema) {
  const size_t n = g.NumNodes();
  Partition p;
  p.block_of.assign(n, 0);
  // Key each node by (label?, schema attribute values); intern keys to ids.
  std::unordered_map<std::string, uint32_t> key_ids;
  std::string key;
  for (NodeId v = 0; v < n; ++v) {
    key.clear();
    if (schema.use_label) {
      key += std::to_string(g.label(v));
      key += '|';
    }
    for (const std::string& attr : schema.attrs) {
      const AttrValue* val = g.GetAttr(v, attr);
      key += val ? val->Serialize() : "<absent>";
      key += '|';
    }
    auto [it, inserted] = key_ids.emplace(key, static_cast<uint32_t>(key_ids.size()));
    p.block_of[v] = it->second;
  }
  p.num_blocks = static_cast<uint32_t>(key_ids.size());
  return p;
}

Result<CompressedGraph> CompressedGraph::Build(const Graph& g,
                                               const CompressionSchema& schema,
                                               EquivalenceMode mode) {
  Partition initial = SchemaPartition(g, schema);
  Partition partition;
  if (mode == EquivalenceMode::kBisimulation) {
    partition = ComputeBisimulation(g, initial);
  } else {
    auto res = ComputeSimEquivalence(g, initial);
    if (!res.ok()) return res.status();
    partition = std::move(res).value();
  }
  CompressedGraph cg;
  cg.schema_ = schema;
  cg.mode_ = mode;
  cg.RebuildFromPartition(g, std::move(partition));
  return cg;
}

void CompressedGraph::RebuildFromPartition(const Graph& g, Partition partition) {
  partition_ = std::move(partition);
  source_version_ = g.version();
  source_nodes_ = g.NumNodes();
  source_edges_ = g.NumEdges();

  members_.assign(partition_.num_blocks, {});
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    members_[partition_.block_of[v]].push_back(v);
  }

  gc_ = Graph();
  // One node per class, labelled and attributed from a representative
  // member (all members agree on schema features by construction).
  for (uint32_t cls = 0; cls < partition_.num_blocks; ++cls) {
    EF_CHECK(!members_[cls].empty()) << "empty equivalence class " << cls;
    NodeId rep = members_[cls][0];
    NodeId cnode = gc_.AddNode(g.NodeLabelName(rep));
    EF_CHECK(cnode == cls);
    if (!schema_.use_label) {
      // Label still copied above for display; queries must not rely on it.
    }
    for (const std::string& attr : schema_.attrs) {
      const AttrValue* val = g.GetAttr(rep, attr);
      if (val != nullptr) gc_.SetAttr(cnode, attr, *val);
    }
    gc_.SetAttr(cnode, "class_size",
                AttrValue(static_cast<int64_t>(members_[cls].size())));
  }
  std::unordered_set<uint64_t> seen;
  seen.reserve(g.NumEdges());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    uint32_t cv = partition_.block_of[v];
    for (NodeId w : g.OutNeighbors(v)) {
      uint64_t key = (static_cast<uint64_t>(cv) << 32) | partition_.block_of[w];
      if (seen.insert(key).second) {
        gc_.AddEdgeUnchecked(cv, partition_.block_of[w]);
      }
    }
  }
}

double CompressedGraph::NodeRatio() const {
  if (source_nodes_ == 0) return 1.0;
  return static_cast<double>(gc_.NumNodes()) / static_cast<double>(source_nodes_);
}

double CompressedGraph::EdgeRatio() const {
  if (source_edges_ == 0) return 1.0;
  return static_cast<double>(gc_.NumEdges()) / static_cast<double>(source_edges_);
}

bool CompressedGraph::IsCompatible(const Pattern& q) const {
  if (mode_ == EquivalenceMode::kSimEquivalence && !q.IsSimulationPattern()) {
    return false;
  }
  for (const PatternNode& n : q.nodes()) {
    if (!n.label.empty() && !schema_.use_label) return false;
    for (const Condition& c : n.conditions) {
      if (std::find(schema_.attrs.begin(), schema_.attrs.end(), c.attr()) ==
          schema_.attrs.end()) {
        return false;
      }
    }
  }
  return true;
}

MatchRelation CompressedGraph::Decompress(const MatchRelation& compressed) const {
  // Large expansions: mark members in a flat bit row, then emit in one
  // ascending word scan — replaces concatenate-and-sort, whose O(k log k)
  // dominated decompression for low-selectivity queries. Small expansions
  // (k far below n) keep the sort path: zeroing an n-bit row would cost
  // more than sorting the handful of ids it finds.
  MatchRelation out(compressed.NumPatternNodes());
  DenseBitset marks;  // allocated on first dense row, one row, reused
  for (PatternNodeId u = 0; u < compressed.NumPatternNodes(); ++u) {
    size_t expanded_size = 0;
    for (NodeId cls : compressed.MatchesOf(u)) expanded_size += members_[cls].size();
    std::vector<NodeId> expanded;
    expanded.reserve(expanded_size);
    if (expanded_size * 32 < source_nodes_) {
      for (NodeId cls : compressed.MatchesOf(u)) {
        const auto& members = members_[cls];
        expanded.insert(expanded.end(), members.begin(), members.end());
      }
      std::sort(expanded.begin(), expanded.end());
    } else {
      if (marks.NumCols() != source_nodes_) {
        marks = DenseBitset(1, source_nodes_);
      } else {
        marks.ClearAll();
      }
      for (NodeId cls : compressed.MatchesOf(u)) {
        for (NodeId v : members_[cls]) marks.Set(0, v);
      }
      marks.ForEachInRow(0,
                         [&](size_t v) { expanded.push_back(static_cast<NodeId>(v)); });
    }
    out.SetMatches(u, std::move(expanded));
  }
  return out;
}

}  // namespace expfinder
