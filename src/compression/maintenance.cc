#include "src/compression/maintenance.h"

#include "src/util/logging.h"

namespace expfinder {

Result<MaintainedCompression> MaintainedCompression::Create(const Graph* g,
                                                            CompressionSchema schema,
                                                            double rebuild_factor) {
  if (rebuild_factor < 1.0) {
    return Status::InvalidArgument("rebuild_factor must be >= 1.0");
  }
  MaintainedCompression mc(g, std::move(schema), rebuild_factor);
  auto built = CompressedGraph::Build(*g, mc.schema_, EquivalenceMode::kBisimulation);
  if (!built.ok()) return built.status();
  mc.cg_ = std::move(built).value();
  mc.blocks_at_last_rebuild_ = mc.cg_.NumClasses();
  return mc;
}

size_t MaintainedCompression::OnGraphUpdated(const UpdateBatch& batch) {
  ++num_maintenances_;
  // Note: only edge updates are supported; attribute/label changes would
  // invalidate the schema partition and require Rebuild().
  EF_CHECK(g_->NumNodes() == cg_.partition().block_of.size())
      << "node set changed; call Rebuild()";
  // Only the *source* endpoint of a touched edge changes its (forward)
  // signature; everything else is reached by the backward split propagation.
  std::vector<NodeId> dirty;
  dirty.reserve(batch.size());
  for (const GraphUpdate& u : batch) dirty.push_back(u.src);
  Partition p = cg_.partition();
  size_t new_blocks = RefineFrom(*g_, &p, dirty);
  if (p.num_blocks >
      static_cast<uint32_t>(rebuild_factor_ * blocks_at_last_rebuild_)) {
    Rebuild();
    return new_blocks;
  }
  cg_.RebuildFromPartition(*g_, std::move(p));
  return new_blocks;
}

size_t MaintainedCompression::OnGraphUpdated() {
  ++num_maintenances_;
  EF_CHECK(g_->NumNodes() == cg_.partition().block_of.size())
      << "node set changed; call Rebuild()";
  Partition p = cg_.partition();
  size_t passes = 0;
  while (RefineOnce(*g_, &p)) {
    ++passes;
    EF_CHECK(passes <= g_->NumNodes() + 1) << "maintenance refinement diverged";
  }
  if (p.num_blocks >
      static_cast<uint32_t>(rebuild_factor_ * blocks_at_last_rebuild_)) {
    Rebuild();
    return passes;
  }
  cg_.RebuildFromPartition(*g_, std::move(p));
  return passes;
}

void MaintainedCompression::OnNodeAdded(NodeId v) {
  EF_CHECK(g_->IsValidNode(v) && v == cg_.partition().block_of.size())
      << "OnNodeAdded must follow Graph::AddNode immediately";
  Partition p = cg_.partition();
  p.block_of.push_back(p.num_blocks++);
  cg_.RebuildFromPartition(*g_, std::move(p));
}

void MaintainedCompression::Rebuild() {
  ++num_rebuilds_;
  auto built = CompressedGraph::Build(*g_, schema_, EquivalenceMode::kBisimulation);
  EF_CHECK(built.ok()) << built.status();
  cg_ = std::move(built).value();
  blocks_at_last_rebuild_ = cg_.NumClasses();
}

}  // namespace expfinder
