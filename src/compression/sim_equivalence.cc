#include "src/compression/sim_equivalence.h"

#include "src/util/logging.h"

namespace expfinder {

namespace {
inline bool TestBit(const std::vector<uint64_t>& bits, size_t i) {
  return (bits[i >> 6] >> (i & 63)) & 1;
}
inline void SetBit(std::vector<uint64_t>* bits, size_t i) {
  (*bits)[i >> 6] |= uint64_t{1} << (i & 63);
}
inline void ClearBit(std::vector<uint64_t>* bits, size_t i) {
  (*bits)[i >> 6] &= ~(uint64_t{1} << (i & 63));
}
}  // namespace

Result<std::vector<std::vector<uint64_t>>> ComputeSelfSimulation(
    const Graph& g, const Partition& initial) {
  const size_t n = g.NumNodes();
  if (n > kSimEquivalenceMaxNodes) {
    return Status::Unsupported(
        "simulation-equivalence is quadratic; graph exceeds the " +
        std::to_string(kSimEquivalenceMaxNodes) + "-node guard");
  }
  EF_CHECK(initial.block_of.size() == n);
  const size_t words = (n + 63) / 64;
  // sim[v]: candidates that may simulate v; start with the initial block.
  std::vector<std::vector<uint64_t>> sim(n, std::vector<uint64_t>(words, 0));
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w = 0; w < n; ++w) {
      if (initial.block_of[v] == initial.block_of[w]) SetBit(&sim[v], w);
    }
  }
  // Fixpoint: w simulates v requires for each v->v' some w->w' with
  // w' simulating v' — i.e. out(w) intersects sim[v'].
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId vp : g.OutNeighbors(v)) {
        const auto& target = sim[vp];
        // Remove every w in sim[v] with out(w) ∩ sim[vp] empty.
        for (size_t word = 0; word < words; ++word) {
          uint64_t bits = sim[v][word];
          while (bits) {
            int bit = __builtin_ctzll(bits);
            bits &= bits - 1;
            NodeId w = static_cast<NodeId>(word * 64 + bit);
            bool supported = false;
            for (NodeId wp : g.OutNeighbors(w)) {
              if (TestBit(target, wp)) {
                supported = true;
                break;
              }
            }
            if (!supported) {
              ClearBit(&sim[v], w);
              changed = true;
            }
          }
        }
      }
    }
  }
  return sim;
}

Result<Partition> ComputeSimEquivalence(const Graph& g, const Partition& initial) {
  auto sim_res = ComputeSelfSimulation(g, initial);
  if (!sim_res.ok()) return sim_res.status();
  const auto& sim = sim_res.value();
  const size_t n = g.NumNodes();
  Partition p;
  p.block_of.assign(n, UINT32_MAX);
  for (NodeId v = 0; v < n; ++v) {
    if (p.block_of[v] != UINT32_MAX) continue;
    uint32_t cls = p.num_blocks++;
    p.block_of[v] = cls;
    for (NodeId w = v + 1; w < n; ++w) {
      if (p.block_of[w] == UINT32_MAX && TestBit(sim[v], w) && TestBit(sim[w], v)) {
        p.block_of[w] = cls;
      }
    }
  }
  return p;
}

}  // namespace expfinder
