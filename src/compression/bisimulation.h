// Forward-bisimulation partition refinement — the equivalence underlying
// query-preserving compression (paper §II "Graph Compression Module", after
// Fan et al., SIGMOD 2012): nodes that simulate each other's forward
// behaviour are merged; (bounded) simulation queries evaluated on the
// compressed graph decompress to exactly M(Q,G).
//
// Why bisimulation is sufficient for *bounded* simulation (sketch; the
// property tests exercise this): if u ~ v then for every bisimulation class
// C and length d, u has a nonempty path of length d into C iff v does
// (induction on d via the edge condition). Match sets are unions of classes
// (classes refine the schema attributes), so "exists a match of u' within
// distance k" is a class-level property preserved by the quotient.

#ifndef EXPFINDER_COMPRESSION_BISIMULATION_H_
#define EXPFINDER_COMPRESSION_BISIMULATION_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace expfinder {

/// \brief A partition of the graph's nodes into equivalence blocks.
struct Partition {
  std::vector<uint32_t> block_of;  // per node
  uint32_t num_blocks = 0;
};

/// Refines `initial` to the coarsest stable (forward-bisimulation) partition
/// via iterated signature hashing: a node's signature is its own block plus
/// the set of successor blocks; blocks split until no signature
/// distinguishes members. Deterministic block numbering (first-occurrence
/// order). `iterations_out` (optional) reports refinement rounds.
Partition ComputeBisimulation(const Graph& g, const Partition& initial,
                              int* iterations_out = nullptr);

/// One refinement pass used by incremental maintenance: splits blocks by
/// signature exactly once, starting from `current`. Returns true when
/// anything split.
bool RefineOnce(const Graph& g, Partition* current);

/// Localized re-stabilization for incremental maintenance: `current` was
/// stable before the graph changed; only nodes in `dirty_nodes` (sources of
/// touched edges) have altered signatures. Re-splits their blocks and
/// propagates backwards along in-edges until stable — cost proportional to
/// the affected region instead of |G| per pass. Returns the number of new
/// blocks created.
size_t RefineFrom(const Graph& g, Partition* current,
                  const std::vector<NodeId>& dirty_nodes);

/// True when `p` is stable on `g` (no signature split possible); the
/// stability invariant checked by tests after maintenance.
bool IsStablePartition(const Graph& g, const Partition& p);

}  // namespace expfinder

#endif  // EXPFINDER_COMPRESSION_BISIMULATION_H_
