// Simulation-equivalence classes: u and v are equivalent when each
// simulates the other (the merge criterion quoted in the paper: Fred and
// Pat "simulate the behavior of each other ... they could be considered
// equivalent"). Coarser than bisimulation, hence better compression, but
// the quotient only preserves plain (bound-1) simulation queries — the
// engine restricts it accordingly; bench_ablation compares the two modes.
//
// Computed as the maximum self-simulation relation with per-node bitsets,
// O(n^2 m / 64) worst case — guarded to modest graphs.

#ifndef EXPFINDER_COMPRESSION_SIM_EQUIVALENCE_H_
#define EXPFINDER_COMPRESSION_SIM_EQUIVALENCE_H_

#include <cstdint>
#include <vector>

#include "src/compression/bisimulation.h"
#include "src/graph/graph.h"
#include "src/util/result.h"

namespace expfinder {

/// Hard cap on node count for the quadratic-memory self-simulation.
inline constexpr size_t kSimEquivalenceMaxNodes = 20000;

/// Computes simulation-equivalence classes refining `initial` (two nodes can
/// only be equivalent when in the same initial block). Fails with
/// Unsupported beyond kSimEquivalenceMaxNodes.
Result<Partition> ComputeSimEquivalence(const Graph& g, const Partition& initial);

/// The maximum self-simulation preorder as bitsets: sim[v] bit w set iff w
/// simulates v (label/block-compatible). Exposed for tests.
Result<std::vector<std::vector<uint64_t>>> ComputeSelfSimulation(
    const Graph& g, const Partition& initial);

}  // namespace expfinder

#endif  // EXPFINDER_COMPRESSION_SIM_EQUIVALENCE_H_
