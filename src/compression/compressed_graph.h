// Query-preserving compressed graphs (paper §II "Graph Compression
// Module"): nodes in the same equivalence class are merged; the query engine
// evaluates (bounded) simulation queries directly on the compressed graph
// and expands classes back to data nodes in linear time.

#ifndef EXPFINDER_COMPRESSION_COMPRESSED_GRAPH_H_
#define EXPFINDER_COMPRESSION_COMPRESSED_GRAPH_H_

#include <string>
#include <vector>

#include "src/compression/bisimulation.h"
#include "src/graph/graph.h"
#include "src/matching/match_relation.h"
#include "src/query/pattern.h"
#include "src/util/result.h"

namespace expfinder {

/// Equivalence used for merging.
enum class EquivalenceMode {
  /// Forward bisimulation (default): preserves bounded-simulation queries.
  kBisimulation,
  /// Simulation equivalence: coarser, preserves only bound-1 queries;
  /// quadratic computation (small graphs / ablation).
  kSimEquivalence,
};

/// \brief Which node features queries may test. The initial partition keys
/// on the label (when use_label) plus the listed attributes, so any query
/// touching only those is answerable on the compressed graph.
struct CompressionSchema {
  bool use_label = true;
  std::vector<std::string> attrs;
};

/// Builds the initial partition induced by the schema.
Partition SchemaPartition(const Graph& g, const CompressionSchema& schema);

/// \brief A compressed graph Gc plus the class mapping needed to decompress
/// query results.
class CompressedGraph {
 public:
  /// Compresses `g` under `schema` with the chosen equivalence.
  static Result<CompressedGraph> Build(const Graph& g, const CompressionSchema& schema,
                                       EquivalenceMode mode = EquivalenceMode::kBisimulation);

  /// The compressed graph (one node per class; schema attributes copied from
  /// a representative member).
  const Graph& gc() const { return gc_; }

  EquivalenceMode mode() const { return mode_; }
  const CompressionSchema& schema() const { return schema_; }

  uint32_t NumClasses() const { return partition_.num_blocks; }
  uint32_t ClassOf(NodeId v) const { return partition_.block_of[v]; }
  const std::vector<NodeId>& MembersOf(uint32_t cls) const { return members_[cls]; }
  const Partition& partition() const { return partition_; }

  /// |Gc nodes| / |G nodes| (smaller = better compression).
  double NodeRatio() const;
  /// |Gc edges| / |G edges|.
  double EdgeRatio() const;

  /// True when `q` only tests features in the schema (and, for
  /// simulation-equivalence mode, is a plain simulation pattern) — i.e.
  /// M(Q,G) can be recovered from M(Q,Gc).
  bool IsCompatible(const Pattern& q) const;

  /// Linear-time decompression: expands each matched class to its members.
  MatchRelation Decompress(const MatchRelation& compressed) const;

  /// Version of the source graph at (re)build time.
  uint64_t source_version() const { return source_version_; }

  /// Rebuilds gc/members from a (refined) partition; used by incremental
  /// maintenance. `g` must be the (updated) source graph.
  void RebuildFromPartition(const Graph& g, Partition partition);

  /// Default-constructs an empty placeholder (no classes); used by holders
  /// that Build() into it. Most callers should use Build().
  CompressedGraph() = default;

 private:
  Graph gc_;
  Partition partition_;
  std::vector<std::vector<NodeId>> members_;
  CompressionSchema schema_;
  EquivalenceMode mode_ = EquivalenceMode::kBisimulation;
  uint64_t source_version_ = 0;
  size_t source_nodes_ = 0;
  size_t source_edges_ = 0;
};

}  // namespace expfinder

#endif  // EXPFINDER_COMPRESSION_COMPRESSED_GRAPH_H_
