#include "src/compression/bisimulation.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/logging.h"

namespace expfinder {

namespace {

/// One signature-split pass: groups nodes by (own block, sorted successor
/// blocks) and renumbers groups in first-occurrence order.
bool SplitBySignature(const Graph& g, Partition* p) {
  const size_t n = g.NumNodes();
  // Hash signatures to provisional group ids.
  struct VecHash {
    size_t operator()(const std::vector<uint32_t>& v) const {
      size_t h = 0xcbf29ce484222325ULL;
      for (uint32_t x : v) {
        h ^= x;
        h *= 0x100000001b3ULL;
      }
      return h;
    }
  };
  std::unordered_map<std::vector<uint32_t>, uint32_t, VecHash> groups;
  groups.reserve(p->num_blocks * 2);
  std::vector<uint32_t> next(n);
  std::vector<uint32_t> sig;
  for (NodeId v = 0; v < n; ++v) {
    sig.clear();
    sig.push_back(p->block_of[v]);
    size_t body = sig.size();
    for (NodeId w : g.OutNeighbors(v)) sig.push_back(p->block_of[w]);
    std::sort(sig.begin() + body, sig.end());
    sig.erase(std::unique(sig.begin() + body, sig.end()), sig.end());
    auto [it, inserted] = groups.emplace(sig, static_cast<uint32_t>(groups.size()));
    next[v] = it->second;
  }
  bool changed = groups.size() != p->num_blocks;
  p->block_of = std::move(next);
  p->num_blocks = static_cast<uint32_t>(groups.size());
  return changed;
}

}  // namespace

Partition ComputeBisimulation(const Graph& g, const Partition& initial,
                              int* iterations_out) {
  EF_CHECK(initial.block_of.size() == g.NumNodes())
      << "initial partition size mismatch";
  Partition p = initial;
  int iters = 0;
  while (SplitBySignature(g, &p)) {
    ++iters;
    EF_CHECK(iters <= static_cast<int>(g.NumNodes()) + 1)
        << "bisimulation refinement failed to converge";
  }
  ++iters;  // the final (stable) pass
  if (iterations_out != nullptr) *iterations_out = iters;
  return p;
}

bool RefineOnce(const Graph& g, Partition* current) {
  EF_CHECK(current->block_of.size() == g.NumNodes());
  return SplitBySignature(g, current);
}

size_t RefineFrom(const Graph& g, Partition* p,
                  const std::vector<NodeId>& dirty_nodes) {
  EF_CHECK(p->block_of.size() == g.NumNodes());
  // Block member lists (rebuilt once; split bookkeeping keeps them exact).
  std::vector<std::vector<NodeId>> members(p->num_blocks);
  for (NodeId v = 0; v < g.NumNodes(); ++v) members[p->block_of[v]].push_back(v);

  std::vector<char> queued(p->num_blocks, 0);
  std::vector<uint32_t> queue;
  auto enqueue = [&](uint32_t block) {
    if (block >= queued.size()) queued.resize(block + 1, 0);
    if (!queued[block]) {
      queued[block] = 1;
      queue.push_back(block);
    }
  };
  for (NodeId v : dirty_nodes) enqueue(p->block_of[v]);

  size_t new_blocks = 0;
  std::vector<uint32_t> sig;
  struct VecHash {
    size_t operator()(const std::vector<uint32_t>& v) const {
      size_t h = 0xcbf29ce484222325ULL;
      for (uint32_t x : v) {
        h ^= x;
        h *= 0x100000001b3ULL;
      }
      return h;
    }
  };
  size_t head = 0;
  while (head < queue.size()) {
    uint32_t block = queue[head++];
    queued[block] = 0;
    if (members[block].size() <= 1) continue;
    // Group members by successor-block signature (own block is shared, so
    // it is omitted). Group order follows member id order: deterministic.
    std::unordered_map<std::vector<uint32_t>, uint32_t, VecHash> group_of;
    std::vector<std::vector<NodeId>> groups;
    for (NodeId v : members[block]) {
      sig.clear();
      for (NodeId w : g.OutNeighbors(v)) sig.push_back(p->block_of[w]);
      std::sort(sig.begin(), sig.end());
      sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
      auto [it, inserted] = group_of.emplace(sig, static_cast<uint32_t>(groups.size()));
      if (inserted) groups.emplace_back();
      groups[it->second].push_back(v);
    }
    if (groups.size() == 1) continue;
    // First group keeps the block id; the rest get fresh ids. Predecessors
    // of every *moved* node see a changed signature and must be re-checked.
    members[block] = std::move(groups[0]);
    for (size_t gi = 1; gi < groups.size(); ++gi) {
      uint32_t fresh = p->num_blocks++;
      ++new_blocks;
      for (NodeId v : groups[gi]) {
        p->block_of[v] = fresh;
        for (NodeId w : g.InNeighbors(v)) enqueue(p->block_of[w]);
      }
      members.push_back(std::move(groups[gi]));
    }
    // The shrunk block's own members kept their signatures, but their
    // predecessors may now distinguish them from the moved ones.
    enqueue(block);
  }
  return new_blocks;
}

bool IsStablePartition(const Graph& g, const Partition& p) {
  Partition copy = p;
  return !SplitBySignature(g, &copy);
}

}  // namespace expfinder
