#include "src/viz/dot_export.h"

#include <algorithm>
#include <sstream>

#include "src/util/string_util.h"

namespace expfinder {

namespace {

std::string NodeLabel(const Graph& g, NodeId v, bool include_attrs) {
  std::ostringstream os;
  os << g.DisplayName(v) << "\\n" << g.NodeLabelName(v);
  if (include_attrs) {
    for (const auto& [key, value] : g.Attrs(v)) {
      const std::string& name = g.AttrKeyName(key);
      if (name == "name") continue;
      os << "\\n" << name << "=" << value.ToString();
    }
  }
  return os.str();
}

}  // namespace

std::string GraphToDot(const Graph& g, const DotOptions& options) {
  std::ostringstream os;
  size_t limit = options.max_nodes == 0 ? g.NumNodes()
                                        : std::min(options.max_nodes, g.NumNodes());
  os << "digraph G {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  if (limit < g.NumNodes()) {
    os << "  // truncated to the first " << limit << " of " << g.NumNodes()
       << " nodes\n";
  }
  for (NodeId v = 0; v < limit; ++v) {
    os << "  n" << v << " [label=\""
       << EscapeQuoted(NodeLabel(g, v, options.include_attrs)) << "\"];\n";
  }
  for (NodeId v = 0; v < limit; ++v) {
    for (NodeId w : g.OutNeighbors(v)) {
      if (w < limit) os << "  n" << v << " -> n" << w << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string PatternToDot(const Pattern& q) {
  std::ostringstream os;
  os << "digraph Q {\n  rankdir=LR;\n  node [shape=ellipse, fontsize=10];\n";
  for (PatternNodeId u = 0; u < q.NumNodes(); ++u) {
    const PatternNode& n = q.node(u);
    std::ostringstream label;
    label << n.name;
    if (!n.label.empty()) label << "\\n" << n.label;
    for (const Condition& c : n.conditions) label << "\\n" << c.ToString();
    bool is_output = q.output_node() && *q.output_node() == u;
    os << "  q" << u << " [label=\"" << EscapeQuoted(label.str()) << "\"";
    if (is_output) os << ", peripheries=2, color=red";
    os << "];\n";
  }
  for (const PatternEdge& e : q.edges()) {
    os << "  q" << e.src << " -> q" << e.dst << " [label=\"";
    if (e.bound == kUnboundedEdge) {
      os << "*";
    } else {
      os << e.bound;
    }
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string ResultGraphToDot(const ResultGraph& gr, const Graph& g, const Pattern& q,
                             const std::vector<NodeId>& highlight) {
  std::ostringstream os;
  os << "digraph Gr {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  // Annotate each result node with the pattern nodes it matches.
  std::vector<std::string> roles(gr.NumNodes());
  for (PatternNodeId u = 0; u < q.NumNodes(); ++u) {
    for (uint32_t pos : gr.MatchesOf(u)) {
      if (!roles[pos].empty()) roles[pos] += ",";
      roles[pos] += q.node(u).name;
    }
  }
  for (uint32_t pos = 0; pos < gr.NumNodes(); ++pos) {
    NodeId v = gr.DataNode(pos);
    bool hot = std::find(highlight.begin(), highlight.end(), v) != highlight.end();
    os << "  r" << pos << " [label=\""
       << EscapeQuoted(g.DisplayName(v) + "\\n[" + roles[pos] + "]") << "\"";
    if (hot) os << ", color=red, fontcolor=red, penwidth=2";
    os << "];\n";
  }
  for (uint32_t pos = 0; pos < gr.NumNodes(); ++pos) {
    for (const auto& [dst, weight] : gr.Out()[pos]) {
      os << "  r" << pos << " -> r" << dst << " [label=\""
         << static_cast<int64_t>(weight) << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace expfinder
