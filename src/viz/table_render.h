// Fixed-width console tables: the "drill down / roll up" text views of the
// manager CLI and the paper-style rows printed by the benchmark harness.

#ifndef EXPFINDER_VIZ_TABLE_RENDER_H_
#define EXPFINDER_VIZ_TABLE_RENDER_H_

#include <string>
#include <vector>

namespace expfinder {

/// \brief Accumulates rows and renders an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row (shorter rows are padded with empty cells).
  void AddRow(std::vector<std::string> row);

  /// Convenience cell formatters.
  static std::string Num(double v, int precision = 2);
  static std::string Int(int64_t v);

  size_t NumRows() const { return rows_.size(); }

  /// Renders with column separators and a header rule.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace expfinder

#endif  // EXPFINDER_VIZ_TABLE_RENDER_H_
