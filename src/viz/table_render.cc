#include "src/viz/table_render.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace expfinder {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(int64_t v) { return std::to_string(v); }

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace expfinder
