// Graphviz DOT export — the library-level substitute for the ExpFinder GUI
// (paper Figs. 3-5): data graphs, pattern queries (bounds on edges, output
// node starred) and result graphs (top-1 match highlighted red, as in
// Fig. 5) render to DOT for external viewers.

#ifndef EXPFINDER_VIZ_DOT_EXPORT_H_
#define EXPFINDER_VIZ_DOT_EXPORT_H_

#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/matching/result_graph.h"
#include "src/query/pattern.h"

namespace expfinder {

/// \brief Rendering options for data graphs.
struct DotOptions {
  /// Render at most this many nodes (plus their induced edges); larger
  /// graphs are truncated with a note. 0 = no limit.
  size_t max_nodes = 200;
  /// Include attribute key=value lines in node labels.
  bool include_attrs = true;
};

/// Data graph -> DOT digraph.
std::string GraphToDot(const Graph& g, const DotOptions& options = {});

/// Pattern -> DOT (conditions in node labels, bounds on edge labels, output
/// node double-circled).
std::string PatternToDot(const Pattern& q);

/// Result graph -> DOT (edge labels = path lengths; `highlight` data nodes,
/// e.g. the top-1 expert, drawn red).
std::string ResultGraphToDot(const ResultGraph& gr, const Graph& g, const Pattern& q,
                             const std::vector<NodeId>& highlight = {});

}  // namespace expfinder

#endif  // EXPFINDER_VIZ_DOT_EXPORT_H_
