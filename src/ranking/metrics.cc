#include "src/ranking/metrics.h"

#include <cmath>

#include "src/graph/shortest_paths.h"
#include "src/ranking/social_impact.h"

namespace expfinder {

std::string_view RankingMetricName(RankingMetric metric) {
  switch (metric) {
    case RankingMetric::kSocialImpact: return "social-impact";
    case RankingMetric::kCloseness: return "closeness";
    case RankingMetric::kDegree: return "degree";
    case RankingMetric::kPageRank: return "pagerank";
    case RankingMetric::kTopicFusion: return "topic-fusion";
  }
  return "?";
}

std::optional<RankingMetric> ParseRankingMetric(std::string_view name) {
  if (name == "social-impact") return RankingMetric::kSocialImpact;
  if (name == "closeness") return RankingMetric::kCloseness;
  if (name == "degree") return RankingMetric::kDegree;
  if (name == "pagerank") return RankingMetric::kPageRank;
  if (name == "topic-fusion") return RankingMetric::kTopicFusion;
  return std::nullopt;
}

std::vector<double> ResultGraphPageRank(const ResultGraph& gr, double damping,
                                        int iterations) {
  const size_t n = gr.NumNodes();
  if (n == 0) return {};
  std::vector<double> rank(n, 1.0 / n), next(n);
  for (int it = 0; it < iterations; ++it) {
    double dangling = 0.0;
    std::fill(next.begin(), next.end(), (1.0 - damping) / n);
    for (uint32_t v = 0; v < n; ++v) {
      const auto& outs = gr.Out()[v];
      if (outs.empty()) {
        dangling += rank[v];
        continue;
      }
      double share = damping * rank[v] / outs.size();
      for (const auto& edge : outs) next[edge.first] += share;
    }
    double dangling_share = damping * dangling / n;
    for (double& r : next) r += dangling_share;
    rank.swap(next);
  }
  return rank;
}

double MetricScore(const ResultGraph& gr, uint32_t pos, RankingMetric metric) {
  switch (metric) {
    case RankingMetric::kSocialImpact:
      return SocialImpactScore(gr, pos);
    case RankingMetric::kCloseness: {
      std::vector<double> fwd = DijkstraFrom(gr.Out(), pos);
      double sum = 0.0;
      size_t reached = 0;
      for (uint32_t i = 0; i < gr.NumNodes(); ++i) {
        if (i != pos && std::isfinite(fwd[i])) {
          sum += fwd[i];
          ++reached;
        }
      }
      if (reached == 0) return InfiniteDistance();
      // Closeness = reached / sum; negate so smaller is better.
      return -(static_cast<double>(reached) / sum);
    }
    case RankingMetric::kDegree:
      return -static_cast<double>(gr.Out()[pos].size() + gr.In()[pos].size());
    case RankingMetric::kPageRank: {
      // Note: recomputes per call; TopKMatchesWith amortizes via MetricScores.
      return -ResultGraphPageRank(gr)[pos];
    }
    case RankingMetric::kTopicFusion:
      // The structure-only degenerate: without topic terms the fusion
      // reduces to its structure half. Real fusion is TopKTopicFusion.
      return SocialImpactScore(gr, pos);
  }
  return 0.0;
}

}  // namespace expfinder
