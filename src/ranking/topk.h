// Top-K selection over ranked matches ("the users may only be interested in
// the best K experts", paper §II). Uses a bounded max-heap so only K results
// are kept while every candidate is scored once.

#ifndef EXPFINDER_RANKING_TOPK_H_
#define EXPFINDER_RANKING_TOPK_H_

#include <cstddef>
#include <vector>

#include "src/ranking/metrics.h"
#include "src/ranking/social_impact.h"

namespace expfinder {

/// The K best matches of the output node under the social-impact metric,
/// sorted best-first. K >= result size returns everything ranked.
Result<std::vector<RankedMatch>> TopKMatches(const ResultGraph& gr, const Pattern& q,
                                             size_t k);

/// Top-K under an alternative metric ("other metrics can be readily
/// supported", §II).
Result<std::vector<RankedMatch>> TopKMatchesWith(const ResultGraph& gr,
                                                 const Pattern& q, size_t k,
                                                 RankingMetric metric);

}  // namespace expfinder

#endif  // EXPFINDER_RANKING_TOPK_H_
