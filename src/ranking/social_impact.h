// Social-impact ranking of output-node matches (paper §II, "Results
// Ranking", Example 2).
//
// For the output node u_o and a match v in the result graph Gr:
//
//   f(u_o, v) = ( sum_{u in Vr} dist(u, v) + sum_{u' in Vr} dist(v, u') )
//               / |V'_r|
//
// where dist is the weighted shortest-path distance in Gr (weights = data
// path lengths) and V'_r is the set of nodes that can reach v or be reached
// from v. Smaller f = closer collaboration = stronger social impact; the
// top-K experts are the K matches with minimum f.

#ifndef EXPFINDER_RANKING_SOCIAL_IMPACT_H_
#define EXPFINDER_RANKING_SOCIAL_IMPACT_H_

#include <vector>

#include "src/matching/result_graph.h"
#include "src/query/pattern.h"
#include "src/util/result.h"

namespace expfinder {

/// \brief A match of the output node with its ranking score (smaller =
/// better for the social-impact metric).
struct RankedMatch {
  NodeId node = kInvalidNode;
  double score = 0.0;

  bool operator==(const RankedMatch& other) const {
    return node == other.node && score == other.score;
  }
};

/// f(u_o, v) for the match at result position `pos`. Matches with no
/// reachable/reaching peers (|V'_r| = 0) rank last: +infinity.
double SocialImpactScore(const ResultGraph& gr, uint32_t pos);

/// Scores of every match of the output node, sorted ascending (ties by node
/// id for determinism). Fails with InvalidArgument when the pattern has no
/// output node.
Result<std::vector<RankedMatch>> RankAllMatches(const ResultGraph& gr,
                                                const Pattern& q);

}  // namespace expfinder

#endif  // EXPFINDER_RANKING_SOCIAL_IMPACT_H_
