// Ranking fusion for topic queries: combines the structural goodness of a
// match (social impact & friends, metrics.h) with its TF-IDF relevance to
// the query's topic terms, then runs a few rounds of bounded CO-HITS-style
// reinforcement over the result graph — an expert close to other relevant
// experts ranks above an equally-relevant loner, which is exactly the
// paper's "experts are found through their collaborations" reading.
//
// Everything here is computed self-contained over the ResultGraph and the
// data graph's attributes: no dependency on the topic inverted index, so
// fused rankings are bit-identical whether seeding used postings or scans.

#ifndef EXPFINDER_RANKING_FUSION_H_
#define EXPFINDER_RANKING_FUSION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/matching/result_graph.h"
#include "src/ranking/metrics.h"
#include "src/ranking/social_impact.h"

namespace expfinder {

/// \brief Fusion knobs. Defaults favour topic relevance but let structure
/// break ties and propagation pull in well-connected experts.
struct TopicFusionOptions {
  /// Weight of topic relevance vs normalized structure goodness in the base
  /// score: base = alpha * topic + (1 - alpha) * structure.
  double alpha = 0.6;
  /// Per-iteration neighborhood mixing: next = (1 - beta) * base +
  /// beta * weighted-neighbor-average. 0 disables propagation.
  double beta = 0.3;
  /// Reinforcement rounds (bounded, so ranking stays O(iterations * edges)).
  int iterations = 3;
  /// The structure half; kTopicFusion itself falls back to kSocialImpact.
  RankingMetric structure_metric = RankingMetric::kSocialImpact;
};

/// The K best matches of Q's output node under fused topic + structure
/// scoring, best-first. `g` must be the data graph the result graph was
/// built over (its attributes feed the TF-IDF half); `terms` are the
/// query's free-text topic terms (normalized via TopicTokens — callers
/// don't pre-tokenize). Deterministic: ties break toward the smaller node
/// id. RankedMatch::score is the negated fused goodness, preserving the
/// smaller-is-better convention of the other metrics. Empty `terms` ranks
/// by the structure half alone.
Result<std::vector<RankedMatch>> TopKTopicFusion(const ResultGraph& gr,
                                                 const Pattern& q, const Graph& g,
                                                 const std::vector<std::string>& terms,
                                                 size_t k,
                                                 const TopicFusionOptions& opts = {});

}  // namespace expfinder

#endif  // EXPFINDER_RANKING_FUSION_H_
