#include "src/ranking/social_impact.h"

#include <algorithm>
#include <cmath>

#include "src/graph/shortest_paths.h"

namespace expfinder {

double SocialImpactScore(const ResultGraph& gr, uint32_t pos) {
  std::vector<double> fwd = DijkstraFrom(gr.Out(), pos);
  std::vector<double> bwd = DijkstraFrom(gr.In(), pos);
  double sum = 0.0;
  size_t peers = 0;
  for (uint32_t i = 0; i < gr.NumNodes(); ++i) {
    if (i == pos) continue;
    bool connected = false;
    if (std::isfinite(fwd[i])) {
      sum += fwd[i];  // v's descendants: dist(v, u')
      connected = true;
    }
    if (std::isfinite(bwd[i])) {
      sum += bwd[i];  // v's ancestors: dist(u, v)
      connected = true;
    }
    if (connected) ++peers;
  }
  if (peers == 0) return InfiniteDistance();
  return sum / static_cast<double>(peers);
}

Result<std::vector<RankedMatch>> RankAllMatches(const ResultGraph& gr,
                                                const Pattern& q) {
  auto output = q.output_node();
  if (!output) return Status::InvalidArgument("pattern has no output node");
  std::vector<RankedMatch> ranked;
  for (uint32_t pos : gr.MatchesOf(*output)) {
    ranked.push_back({gr.DataNode(pos), SocialImpactScore(gr, pos)});
  }
  std::sort(ranked.begin(), ranked.end(), [](const RankedMatch& a, const RankedMatch& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.node < b.node;
  });
  return ranked;
}

}  // namespace expfinder
