// Alternative social-impact metrics (paper §II: "Note that other metrics
// can be readily supported by ExpFinder."). All are normalized to
// smaller-is-better scores so the top-K machinery is metric-agnostic.

#ifndef EXPFINDER_RANKING_METRICS_H_
#define EXPFINDER_RANKING_METRICS_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "src/matching/result_graph.h"

namespace expfinder {

/// Selectable ranking metric.
enum class RankingMetric {
  /// The paper's f(u_o, v): average result-graph distance to/from peers.
  kSocialImpact,
  /// Negated closeness centrality (reciprocal average forward distance).
  kCloseness,
  /// Negated total degree in the result graph.
  kDegree,
  /// Negated PageRank over the result graph.
  kPageRank,
  /// Topic relevance fused with structure (ranking/fusion.h). Needs the
  /// query's topic terms and the data graph, so TopKMatchesWith rejects it —
  /// rank through TopKTopicFusion (the service routes
  /// QueryRequest::topic_terms there). MetricScore alone degenerates to the
  /// structure half (kSocialImpact).
  kTopicFusion,
};

std::string_view RankingMetricName(RankingMetric metric);
std::optional<RankingMetric> ParseRankingMetric(std::string_view name);

/// Smaller-is-better score of the match at result position `pos`.
double MetricScore(const ResultGraph& gr, uint32_t pos, RankingMetric metric);

/// PageRank over the result graph (damping 0.85, 50 iterations); exposed for
/// tests. Scores sum to 1 over result nodes (dangling mass redistributed).
std::vector<double> ResultGraphPageRank(const ResultGraph& gr, double damping = 0.85,
                                        int iterations = 50);

}  // namespace expfinder

#endif  // EXPFINDER_RANKING_METRICS_H_
