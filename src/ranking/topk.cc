#include "src/ranking/topk.h"

#include <algorithm>
#include <queue>

namespace expfinder {

namespace {

/// Shared bounded-heap selection once scores are computable per position.
template <typename ScoreFn>
Result<std::vector<RankedMatch>> SelectTopK(const ResultGraph& gr, const Pattern& q,
                                            size_t k, ScoreFn&& score_of) {
  auto output = q.output_node();
  if (!output) return Status::InvalidArgument("pattern has no output node");
  auto worse = [](const RankedMatch& a, const RankedMatch& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.node < b.node;  // larger id = worse on ties
  };
  // Max-heap of the best k seen so far (top = worst of the kept).
  std::priority_queue<RankedMatch, std::vector<RankedMatch>, decltype(worse)> heap(worse);
  for (uint32_t pos : gr.MatchesOf(*output)) {
    RankedMatch m{gr.DataNode(pos), score_of(pos)};
    if (heap.size() < k) {
      heap.push(m);
    } else if (k > 0 && worse(m, heap.top())) {
      heap.pop();
      heap.push(m);
    }
  }
  std::vector<RankedMatch> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top();
    heap.pop();
  }
  return out;
}

}  // namespace

Result<std::vector<RankedMatch>> TopKMatches(const ResultGraph& gr, const Pattern& q,
                                             size_t k) {
  return SelectTopK(gr, q, k,
                    [&](uint32_t pos) { return SocialImpactScore(gr, pos); });
}

Result<std::vector<RankedMatch>> TopKMatchesWith(const ResultGraph& gr,
                                                 const Pattern& q, size_t k,
                                                 RankingMetric metric) {
  if (metric == RankingMetric::kTopicFusion) {
    return Status::InvalidArgument(
        "topic-fusion needs the query's topic terms and the data graph; rank "
        "through TopKTopicFusion (service: set QueryRequest::topic_terms)");
  }
  if (metric == RankingMetric::kPageRank) {
    // Amortize the power iteration across all matches.
    std::vector<double> pr = ResultGraphPageRank(gr);
    return SelectTopK(gr, q, k, [&](uint32_t pos) { return -pr[pos]; });
  }
  return SelectTopK(gr, q, k,
                    [&](uint32_t pos) { return MetricScore(gr, pos, metric); });
}

}  // namespace expfinder
