#include "src/ranking/fusion.h"

#include <algorithm>
#include <cmath>

#include "src/graph/graph.h"
#include "src/util/string_util.h"

namespace expfinder {

namespace {

/// tf-idf relevance of every result node to the query tokens, min-max
/// normalized into [0, 1]. idf uses the *result graph* as the corpus: a
/// token every match carries (often the one that selected them) stops
/// discriminating, and rarer co-occurring tokens take over.
std::vector<double> TopicRelevance(const ResultGraph& gr, const Graph& g,
                                   const std::vector<std::string>& query_tokens) {
  const size_t n = gr.NumNodes();
  std::vector<double> topic(n, 0.0);
  if (n == 0 || query_tokens.empty()) return topic;
  const size_t nt = query_tokens.size();
  std::vector<std::vector<uint32_t>> tf(n, std::vector<uint32_t>(nt, 0));
  std::vector<uint32_t> df(nt, 0);
  std::vector<std::string> node_tokens;
  for (uint32_t pos = 0; pos < n; ++pos) {
    const NodeId v = gr.DataNode(pos);
    node_tokens.clear();
    AppendTopicTokens(g.NodeLabelName(v), &node_tokens);
    for (const auto& [key, value] : g.Attrs(v)) {
      if (value.is_string()) AppendTopicTokens(value.AsString(), &node_tokens);
    }
    for (const std::string& tok : node_tokens) {
      auto it = std::lower_bound(query_tokens.begin(), query_tokens.end(), tok);
      if (it != query_tokens.end() && *it == tok) {
        ++tf[pos][it - query_tokens.begin()];
      }
    }
    for (size_t i = 0; i < nt; ++i) {
      if (tf[pos][i] > 0) ++df[i];
    }
  }
  for (uint32_t pos = 0; pos < n; ++pos) {
    double score = 0.0;
    for (size_t i = 0; i < nt; ++i) {
      if (tf[pos][i] == 0) continue;
      const double idf =
          std::log(1.0 + static_cast<double>(n) / (1.0 + static_cast<double>(df[i])));
      score += (1.0 + std::log(static_cast<double>(tf[pos][i]))) * idf;
    }
    topic[pos] = score;
  }
  const double max = *std::max_element(topic.begin(), topic.end());
  if (max > 0.0) {
    for (double& s : topic) s /= max;
  }
  return topic;
}

/// Structure goodness in [0, 1] (1 = best): the metric's smaller-is-better
/// scores, min-max inverted over the finite ones. Unreachable/infinite
/// scores pin to 0.
std::vector<double> StructureGoodness(const ResultGraph& gr, RankingMetric metric) {
  const size_t n = gr.NumNodes();
  std::vector<double> raw(n);
  if (metric == RankingMetric::kPageRank) {
    // Amortize the power iteration across all positions.
    std::vector<double> pr = ResultGraphPageRank(gr);
    for (uint32_t pos = 0; pos < n; ++pos) raw[pos] = -pr[pos];
  } else {
    for (uint32_t pos = 0; pos < n; ++pos) raw[pos] = MetricScore(gr, pos, metric);
  }
  double lo = 0.0, hi = 0.0;
  bool any = false;
  for (double s : raw) {
    if (!std::isfinite(s)) continue;
    lo = any ? std::min(lo, s) : s;
    hi = any ? std::max(hi, s) : s;
    any = true;
  }
  std::vector<double> good(n, 0.0);
  for (uint32_t pos = 0; pos < n; ++pos) {
    if (!std::isfinite(raw[pos])) continue;
    good[pos] = hi > lo ? (hi - raw[pos]) / (hi - lo) : 1.0;
  }
  return good;
}

}  // namespace

Result<std::vector<RankedMatch>> TopKTopicFusion(const ResultGraph& gr,
                                                 const Pattern& q, const Graph& g,
                                                 const std::vector<std::string>& terms,
                                                 size_t k,
                                                 const TopicFusionOptions& opts) {
  auto output = q.output_node();
  if (!output) return Status::InvalidArgument("pattern has no output node");
  const size_t n = gr.NumNodes();
  if (n == 0) return std::vector<RankedMatch>{};  // nothing matched, nothing to rank
  std::vector<std::string> query_tokens;
  for (const std::string& t : terms) AppendTopicTokens(t, &query_tokens);
  std::sort(query_tokens.begin(), query_tokens.end());
  query_tokens.erase(std::unique(query_tokens.begin(), query_tokens.end()),
                     query_tokens.end());

  const std::vector<double> topic = TopicRelevance(gr, g, query_tokens);
  RankingMetric structure_metric = opts.structure_metric == RankingMetric::kTopicFusion
                                       ? RankingMetric::kSocialImpact
                                       : opts.structure_metric;
  const std::vector<double> structure = StructureGoodness(gr, structure_metric);

  std::vector<double> base(n);
  for (uint32_t pos = 0; pos < n; ++pos) {
    base[pos] = opts.alpha * topic[pos] + (1.0 - opts.alpha) * structure[pos];
  }

  // Bounded CO-HITS-style reinforcement: each round pulls a node toward the
  // distance-discounted average of its result-graph neighbors (both edge
  // directions — collaboration flows both ways), anchored on the base score
  // so iteration cannot drift away from the evidence.
  std::vector<double> score = base;
  std::vector<double> next(n);
  for (int it = 0; it < opts.iterations && opts.beta > 0.0; ++it) {
    for (uint32_t v = 0; v < n; ++v) {
      double acc = 0.0;
      double wsum = 0.0;
      for (const auto& [u, w] : gr.Out()[v]) {
        const double weight = 1.0 / (1.0 + w);
        acc += weight * score[u];
        wsum += weight;
      }
      for (const auto& [u, w] : gr.In()[v]) {
        const double weight = 1.0 / (1.0 + w);
        acc += weight * score[u];
        wsum += weight;
      }
      const double neighborhood = wsum > 0.0 ? acc / wsum : base[v];
      next[v] = (1.0 - opts.beta) * base[v] + opts.beta * neighborhood;
    }
    score.swap(next);
  }

  // Negate into the smaller-is-better convention and select.
  std::vector<RankedMatch> ranked;
  const std::vector<uint32_t>& matches = gr.MatchesOf(*output);
  ranked.reserve(matches.size());
  for (uint32_t pos : matches) {
    ranked.push_back(RankedMatch{gr.DataNode(pos), -score[pos]});
  }
  std::sort(ranked.begin(), ranked.end(), [](const RankedMatch& a, const RankedMatch& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.node < b.node;
  });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace expfinder
