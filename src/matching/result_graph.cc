#include "src/matching/result_graph.h"

#include <algorithm>
#include <optional>

#include "src/graph/bfs.h"
#include "src/graph/csr.h"
#include "src/matching/match_context.h"
#include "src/util/dense_bitset.h"

namespace expfinder {

ResultGraph::ResultGraph(const Graph& g, const Pattern& q, const MatchRelation& m,
                         MatchContext* ctx) {
  // Union of matched data nodes, sorted and deduplicated.
  for (PatternNodeId u = 0; u < m.NumPatternNodes(); ++u) {
    const auto& list = m.MatchesOf(u);
    nodes_.insert(nodes_.end(), list.begin(), list.end());
  }
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
  index_.reserve(nodes_.size() * 2);
  for (uint32_t i = 0; i < nodes_.size(); ++i) index_.emplace(nodes_[i], i);

  matches_of_.resize(q.NumNodes());
  for (PatternNodeId u = 0; u < m.NumPatternNodes(); ++u) {
    for (NodeId v : m.MatchesOf(u)) matches_of_[u].push_back(index_.at(v));
  }

  out_.resize(nodes_.size());
  in_.resize(nodes_.size());
  if (nodes_.empty() || q.NumEdges() == 0) return;

  // Context-provided snapshot/buffers when available; otherwise local (the
  // standalone construction path used by tests and one-off callers).
  std::optional<Csr> local_csr;
  BfsBuffers local_buf;
  const Csr* csr;
  BfsBuffers* buf;
  if (ctx != nullptr) {
    csr = &ctx->SnapshotFor(g);
    ctx->EnsureBuffers(1, g.NumNodes());
    buf = &ctx->Buffers(0);
  } else {
    local_csr.emplace(g);
    csr = &*local_csr;
    local_buf.EnsureSize(g.NumNodes());
    buf = &local_buf;
  }

  // O(1) membership tests for the BFS inner loop (binary-searching the match
  // lists per visited node dominated construction time on large graphs).
  DenseBitset member(q.NumNodes(), g.NumNodes());
  for (PatternNodeId u = 0; u < m.NumPatternNodes(); ++u) {
    for (NodeId v : m.MatchesOf(u)) member.Set(u, v);
  }

  // For every source match, one bounded BFS up to the node's largest
  // out-bound discovers all shortest distances to potential targets; an edge
  // is recorded when any pattern edge admits the visited target. Every
  // derivation of the same (v, v') carries the identical weight — the BFS
  // visits each target once at its shortest nonempty distance — so
  // duplicates (same source matching several pattern nodes) are eliminated
  // by one sort+unique pass instead of a per-visit hash probe.
  struct RawEdge {
    uint64_t key;  // (src pos << 32) | dst pos — sorts into adjacency order
    double weight;
    bool operator<(const RawEdge& other) const { return key < other.key; }
  };
  std::vector<RawEdge> raw;
  for (PatternNodeId u = 0; u < q.NumNodes(); ++u) {
    const auto& out_edges = q.OutEdges(u);
    if (out_edges.empty()) continue;
    Distance depth = q.MaxOutBound(u);
    for (NodeId v : m.MatchesOf(u)) {
      uint64_t vkey = static_cast<uint64_t>(index_.at(v)) << 32;
      BoundedBfsNonEmpty<true>(*csr, v, depth, buf, [&](NodeId w, Distance d) {
        for (uint32_t e : out_edges) {
          const PatternEdge& pe = q.edges()[e];
          if (d > pe.bound || !member.Test(pe.dst, w)) continue;
          raw.push_back({vkey | index_.at(w), static_cast<double>(d)});
          break;
        }
      });
    }
  }
  std::sort(raw.begin(), raw.end());
  uint64_t prev_key = ~uint64_t{0};
  for (const RawEdge& edge : raw) {
    if (edge.key == prev_key) continue;
    prev_key = edge.key;
    uint32_t a = static_cast<uint32_t>(edge.key >> 32);
    uint32_t b = static_cast<uint32_t>(edge.key);
    out_[a].emplace_back(b, edge.weight);
    in_[b].emplace_back(a, edge.weight);
    ++num_edges_;
  }
  // out_ lists are emitted sorted already; in_ needs the per-target sort.
  for (auto& list : in_) std::sort(list.begin(), list.end());
}

std::optional<uint32_t> ResultGraph::PositionOf(NodeId v) const {
  auto it = index_.find(v);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace expfinder
