#include "src/matching/result_graph.h"

#include <algorithm>
#include <optional>

#include "src/graph/bfs.h"
#include "src/graph/csr.h"
#include "src/graph/khop_index.h"
#include "src/matching/match_context.h"
#include "src/util/dense_bitset.h"

namespace expfinder {

namespace {
/// Binds the context to the snapshot, then yields the graph to build over —
/// lets the snapshot constructor delegate with the binding already in place.
const Graph& BindAndGraph(const SnapshotPtr& s, MatchContext* ctx) {
  ctx->BindSnapshot(s);
  return s->graph();
}
}  // namespace

ResultGraph::ResultGraph(const Graph& g, const Pattern& q, const MatchRelation& m,
                         MatchContext* ctx) {
  // Union of matched data nodes, sorted and deduplicated.
  for (PatternNodeId u = 0; u < m.NumPatternNodes(); ++u) {
    const auto& list = m.MatchesOf(u);
    nodes_.insert(nodes_.end(), list.begin(), list.end());
  }
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
  index_.reserve(nodes_.size() * 2);
  for (uint32_t i = 0; i < nodes_.size(); ++i) index_.emplace(nodes_[i], i);

  matches_of_.resize(q.NumNodes());
  for (PatternNodeId u = 0; u < m.NumPatternNodes(); ++u) {
    for (NodeId v : m.MatchesOf(u)) matches_of_[u].push_back(index_.at(v));
  }

  out_.resize(nodes_.size());
  in_.resize(nodes_.size());
  if (nodes_.empty() || q.NumEdges() == 0) return;

  // Context-provided snapshot/buffers when available; otherwise local (the
  // standalone construction path used by tests and one-off callers). The
  // ball index is strictly opportunistic: whatever the matcher that
  // produced `m` warmed in this context — never built here.
  std::optional<Csr> local_csr;
  BfsBuffers local_buf;
  const Csr* csr;
  BfsBuffers* buf;
  const KhopIndex* ball = nullptr;
  if (ctx != nullptr) {
    csr = &ctx->SnapshotFor(g);
    ctx->EnsureBuffers(1, g.NumNodes());
    buf = &ctx->Buffers(0);
    ball = ctx->CachedBallIndex(g);
  } else {
    local_csr.emplace(g);
    csr = &*local_csr;
    local_buf.EnsureSize(g.NumNodes());
    buf = &local_buf;
  }

  // O(1) membership tests for the BFS inner loop (binary-searching the match
  // lists per visited node dominated construction time on large graphs).
  DenseBitset member(q.NumNodes(), g.NumNodes());
  for (PatternNodeId u = 0; u < m.NumPatternNodes(); ++u) {
    for (NodeId v : m.MatchesOf(u)) member.Set(u, v);
  }
  // Dense node -> result-position map for the traversal loop: one array
  // read per recorded edge instead of a hash probe (index_ stays for the
  // PositionOf API). Entries are only meaningful at matched nodes.
  std::vector<uint32_t> pos(g.NumNodes());
  for (uint32_t i = 0; i < nodes_.size(); ++i) pos[nodes_[i]] = i;

  // For every source match, one bounded BFS up to the node's largest
  // out-bound discovers all shortest distances to potential targets; an edge
  // is recorded when any pattern edge admits the visited target. Every
  // derivation of the same (v, v') carries the identical weight — the BFS
  // visits each target once at its shortest nonempty distance — so
  // duplicates (same source matching several pattern nodes) are eliminated
  // by one sort+unique pass instead of a per-visit hash probe.
  struct RawEdge {
    uint64_t key;  // (src pos << 32) | dst pos — sorts into adjacency order
    double weight;
    bool operator<(const RawEdge& other) const { return key < other.key; }
  };
  std::vector<RawEdge> raw;
  for (PatternNodeId u = 0; u < q.NumNodes(); ++u) {
    const auto& out_edges = q.OutEdges(u);
    if (out_edges.empty()) continue;
    Distance depth = q.MaxOutBound(u);
    const bool indexed = ball != nullptr && depth <= ball->depth();
    // Hoisted per-edge state: bound + target membership row.
    struct EdgeRef {
      Distance bound;
      DenseBitset::ConstRow dst_member;
    };
    std::vector<EdgeRef> erefs;
    erefs.reserve(out_edges.size());
    for (uint32_t e : out_edges) {
      const PatternEdge& pe = q.edges()[e];
      erefs.push_back({pe.bound, member.Row(pe.dst)});
    }
    auto record = [&](uint64_t vkey, NodeId w, Distance d) {
      for (const EdgeRef& er : erefs) {
        if (d > er.bound || !er.dst_member[w]) continue;
        raw.push_back({vkey | pos[w], static_cast<double>(d)});
        break;
      }
    };
    for (NodeId v : m.MatchesOf(u)) {
      uint64_t vkey = static_cast<uint64_t>(pos[v]) << 32;
      if (indexed && ball->HasOut(v)) {
        // Same visit set as the BFS, at its shortest nonempty distance.
        for (Distance d = 1; d <= depth; ++d) {
          for (NodeId w : ball->StratumOut(v, d)) record(vkey, w, d);
        }
      } else {
        BoundedBfsNonEmpty<true>(*csr, v, depth, buf,
                                 [&](NodeId w, Distance d) { record(vkey, w, d); });
      }
    }
  }
  // Counting-sort by source position instead of one global sort: buckets
  // hold a handful of targets each (the result out-degree), so the
  // per-bucket sorts are effectively linear, and exact reserves kill the
  // realloc churn of growing ten thousand small adjacency vectors.
  const size_t nn = nodes_.size();
  std::vector<uint32_t> bucket_off(nn + 1, 0);
  for (const RawEdge& e : raw) ++bucket_off[(e.key >> 32) + 1];
  for (size_t i = 0; i < nn; ++i) bucket_off[i + 1] += bucket_off[i];
  std::vector<RawEdge> bucketed(raw.size());
  {
    std::vector<uint32_t> cursor(bucket_off.begin(), bucket_off.end() - 1);
    for (const RawEdge& e : raw) bucketed[cursor[e.key >> 32]++] = e;
  }
  std::vector<uint32_t> in_deg(nn, 0);
  for (uint32_t a = 0; a < nn; ++a) {
    auto begin = bucketed.begin() + bucket_off[a];
    auto end = bucketed.begin() + bucket_off[a + 1];
    if (begin == end) continue;
    std::sort(begin, end);  // keys share the high word, so this sorts by b
    auto& out_list = out_[a];
    out_list.reserve(static_cast<size_t>(end - begin));
    uint64_t prev_key = ~uint64_t{0};
    for (auto it = begin; it != end; ++it) {
      if (it->key == prev_key) continue;  // duplicate derivation, same weight
      prev_key = it->key;
      uint32_t b = static_cast<uint32_t>(it->key);
      out_list.emplace_back(b, it->weight);
      ++in_deg[b];
      ++num_edges_;
    }
  }
  // Mirror into in_: iterating sources ascending appends ascending, so the
  // per-target lists come out sorted without a sort pass.
  for (uint32_t b = 0; b < nn; ++b) in_[b].reserve(in_deg[b]);
  for (uint32_t a = 0; a < nn; ++a) {
    for (const auto& [b, w] : out_[a]) in_[b].emplace_back(a, w);
  }
}

ResultGraph::ResultGraph(const SnapshotPtr& s, const Pattern& q,
                         const MatchRelation& m, MatchContext* ctx)
    : ResultGraph(BindAndGraph(s, ctx), q, m, ctx) {}

std::optional<uint32_t> ResultGraph::PositionOf(NodeId v) const {
  auto it = index_.find(v);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace expfinder
