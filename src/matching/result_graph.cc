#include "src/matching/result_graph.h"

#include <algorithm>

#include "src/graph/bfs.h"
#include "src/graph/csr.h"

namespace expfinder {

ResultGraph::ResultGraph(const Graph& g, const Pattern& q, const MatchRelation& m) {
  // Union of matched data nodes, sorted and deduplicated.
  for (PatternNodeId u = 0; u < m.NumPatternNodes(); ++u) {
    const auto& list = m.MatchesOf(u);
    nodes_.insert(nodes_.end(), list.begin(), list.end());
  }
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
  index_.reserve(nodes_.size() * 2);
  for (uint32_t i = 0; i < nodes_.size(); ++i) index_.emplace(nodes_[i], i);

  matches_of_.resize(q.NumNodes());
  for (PatternNodeId u = 0; u < m.NumPatternNodes(); ++u) {
    for (NodeId v : m.MatchesOf(u)) matches_of_[u].push_back(index_.at(v));
  }

  out_.resize(nodes_.size());
  in_.resize(nodes_.size());
  if (nodes_.empty() || q.NumEdges() == 0) return;

  // For every source match, one bounded BFS up to the node's largest
  // out-bound discovers all shortest distances to potential targets; edges
  // are emitted per pattern edge when the target matches. Duplicate (v,v')
  // derivations keep the minimum weight via a first-wins map (BFS yields
  // shortest distances, identical for all derivations).
  Csr csr(g);
  BfsBuffers buf;
  buf.EnsureSize(g.NumNodes());
  std::unordered_map<uint64_t, double> edge_weight;
  auto key = [](uint32_t a, uint32_t b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  };
  for (PatternNodeId u = 0; u < q.NumNodes(); ++u) {
    const auto& out_edges = q.OutEdges(u);
    if (out_edges.empty()) continue;
    Distance depth = q.MaxOutBound(u);
    for (NodeId v : m.MatchesOf(u)) {
      uint32_t vpos = index_.at(v);
      BoundedBfsNonEmpty<true>(csr, v, depth, &buf, [&](NodeId w, Distance d) {
        for (uint32_t e : out_edges) {
          const PatternEdge& pe = q.edges()[e];
          if (d > pe.bound || !m.Contains(pe.dst, w)) continue;
          auto [it, inserted] = edge_weight.emplace(key(vpos, index_.at(w)),
                                                    static_cast<double>(d));
          if (!inserted) it->second = std::min(it->second, static_cast<double>(d));
        }
      });
    }
  }
  for (const auto& [k, weight] : edge_weight) {
    uint32_t a = static_cast<uint32_t>(k >> 32);
    uint32_t b = static_cast<uint32_t>(k);
    out_[a].emplace_back(b, weight);
    in_[b].emplace_back(a, weight);
    ++num_edges_;
  }
  // Deterministic adjacency order (hash-map iteration order is not).
  for (auto& list : out_) std::sort(list.begin(), list.end());
  for (auto& list : in_) std::sort(list.begin(), list.end());
}

std::optional<uint32_t> ResultGraph::PositionOf(NodeId v) const {
  auto it = index_.find(v);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace expfinder
