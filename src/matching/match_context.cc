#include "src/matching/match_context.h"

#include <algorithm>

namespace expfinder {

namespace {
/// Below this many seeding units per worker, fan-out overhead beats the win.
constexpr size_t kMinSeedItemsPerWorker = 128;
}  // namespace

const Csr& MatchContext::SnapshotFor(const Graph& g) {
  if (csr_ == nullptr || snapshot_graph_ != &g || snapshot_uid_ != g.uid() ||
      snapshot_version_ != g.version()) {
    csr_ = std::make_unique<Csr>(g);
    snapshot_graph_ = &g;
    snapshot_uid_ = g.uid();
    snapshot_version_ = g.version();
    ++snapshot_builds_;
  }
  return *csr_;
}

void MatchContext::InvalidateSnapshot() {
  csr_.reset();
  snapshot_graph_ = nullptr;
}

void MatchContext::EnsureBuffers(size_t num_workers, size_t n) {
  while (buffers_.size() < num_workers) buffers_.emplace_back();
  for (size_t i = 0; i < num_workers; ++i) buffers_[i].EnsureSize(n);
}

std::vector<std::vector<int32_t>>& MatchContext::Counters(size_t pool_index,
                                                          size_t count, size_t n) {
  auto& pool = counters_[pool_index];
  if (pool.size() < count) pool.resize(count);
  for (size_t i = 0; i < count; ++i) pool[i].assign(n, 0);
  return pool;
}

ThreadPool& MatchContext::Pool(size_t num_workers) {
  if (pool_ == nullptr || pool_->num_workers() < num_workers) {
    pool_ = std::make_unique<ThreadPool>(num_workers);
  }
  return *pool_;
}

size_t MatchContext::SeedWorkers(uint32_t requested, size_t work_items) const {
  if (work_items == 0) return 1;
  size_t threads = ThreadPool::ResolveThreads(requested);
  if (requested == 0) {
    // Auto mode: don't spin up workers for tiny candidate lists.
    threads = std::min(threads, std::max<size_t>(1, work_items / kMinSeedItemsPerWorker));
  }
  return std::max<size_t>(1, std::min(threads, work_items));
}

}  // namespace expfinder
