#include "src/matching/match_context.h"

#include <algorithm>

#include "src/index/topic_index.h"

namespace expfinder {

namespace {
/// Below this many seeding units per worker, fan-out overhead beats the win.
constexpr size_t kMinSeedItemsPerWorker = 128;
}  // namespace

const Csr& MatchContext::SnapshotFor(const Graph& g) {
  if (snapshot_ != nullptr && &snapshot_->graph() == &g) return snapshot_->csr();
  if (csr_ == nullptr || snapshot_graph_ != &g || snapshot_uid_ != g.uid() ||
      snapshot_version_ != g.version()) {
    csr_ = std::make_unique<Csr>(g);
    snapshot_graph_ = &g;
    snapshot_uid_ = g.uid();
    snapshot_version_ = g.version();
    ++snapshot_builds_;
    // A ball index derived from the replaced snapshot can never serve
    // again; drop it here too, so traffic that stops requesting the index
    // (disabled per-request) cannot pin a dead version's index in memory.
    if (ball_index_ != nullptr &&
        (ball_graph_ != &g || ball_uid_ != g.uid() || ball_version_ != g.version())) {
      ball_index_.reset();
      ball_failed_depth_ = 0;
      ball_key_uses_ = 0;
    }
  }
  return *csr_;
}

void MatchContext::InvalidateSnapshot() {
  csr_.reset();
  snapshot_graph_ = nullptr;
  ball_index_.reset();
  ball_graph_ = nullptr;
  ball_failed_depth_ = 0;
  ball_key_uses_ = 0;
}

const KhopIndex* MatchContext::BallIndexFor(const Graph& g, Distance depth,
                                            const BallIndexOptions& limits,
                                            uint32_t num_threads) {
  if (snapshot_ != nullptr && &snapshot_->graph() == &g) {
    // Bound path: the index lives on the shared snapshot — built once per
    // published version, scanned by every reader. A build this call
    // triggers uses this context's seeding pool and is attributed to this
    // context's build counter.
    const size_t workers = SeedWorkers(num_threads, snapshot_->csr().NumNodes());
    ThreadPool* pool = workers > 1 ? &Pool(workers) : nullptr;
    bool built_now = false;
    const KhopIndex* index =
        snapshot_->BallIndex(depth, limits, pool, workers, &built_now);
    if (built_now) ++ball_index_builds_;
    return index;
  }
  if (!limits.enabled || depth == 0 || depth == kUnreachable ||
      depth > limits.max_depth) {
    return nullptr;
  }
  const bool same_key = ball_graph_ == &g && ball_uid_ == g.uid() &&
                        ball_version_ == g.version() && ball_limits_ == limits;
  if (!same_key) {
    ball_index_.reset();
    ball_graph_ = &g;
    ball_uid_ = g.uid();
    ball_version_ = g.version();
    ball_limits_ = limits;
    ball_failed_depth_ = 0;
    ball_key_uses_ = 0;
  }
  ++ball_key_uses_;
  if (ball_index_ != nullptr && ball_index_->depth() >= depth) return ball_index_.get();
  if (ball_failed_depth_ != 0 && depth >= ball_failed_depth_) return nullptr;
  // Deferred build: only pay the O(n) construction once this (graph,
  // version) has shown reuse — one-shot callers and write-heavy version
  // churn stay on the BFS paths for free.
  if (ball_key_uses_ < limits.build_after_uses) return nullptr;
  const Csr& csr = SnapshotFor(g);
  const size_t workers = SeedWorkers(num_threads, csr.NumNodes());
  ThreadPool* pool = workers > 1 ? &Pool(workers) : nullptr;
  auto built = KhopIndex::Build(csr, depth, limits, pool, workers);
  if (built == nullptr) {
    // Keep any existing shallower index — it is still exact — and remember
    // that `depth` does not fit the budget.
    ball_failed_depth_ = depth;
    return nullptr;
  }
  ball_index_ = std::move(built);
  ++ball_index_builds_;
  return ball_index_.get();
}

const TopicIndex* MatchContext::TopicIndexFor(const Graph& g,
                                              const TopicIndexOptions& limits) {
  if (snapshot_ == nullptr || &snapshot_->graph() != &g) return nullptr;
  bool built_now = false;
  const TopicIndex* topics = snapshot_->TopicIndexFor(limits, &built_now);
  if (built_now) ++topic_index_builds_;
  return topics;
}

void MatchContext::EnsureBuffers(size_t num_workers, size_t n) {
  while (buffers_.size() < num_workers) buffers_.emplace_back();
  for (size_t i = 0; i < num_workers; ++i) buffers_[i].EnsureSize(n);
}

std::vector<std::vector<int32_t>>& MatchContext::Counters(size_t pool_index,
                                                          size_t count, size_t n) {
  auto& pool = counters_[pool_index];
  if (pool.size() < count) pool.resize(count);
  for (size_t i = 0; i < count; ++i) pool[i].assign(n, 0);
  return pool;
}

ThreadPool& MatchContext::Pool(size_t num_workers) {
  if (pool_ == nullptr || pool_->num_workers() < num_workers) {
    pool_ = std::make_unique<ThreadPool>(num_workers);
  }
  return *pool_;
}

size_t MatchContext::SeedWorkers(uint32_t requested, size_t work_items) const {
  if (work_items == 0) return 1;
  size_t threads = ThreadPool::ResolveThreads(requested);
  if (requested == 0) {
    // Auto mode: don't spin up workers for tiny candidate lists.
    threads = std::min(threads, std::max<size_t>(1, work_items / kMinSeedItemsPerWorker));
  }
  return std::max<size_t>(1, std::min(threads, work_items));
}

}  // namespace expfinder
