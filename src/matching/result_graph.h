// Result graphs (paper §II): the compact representation of M(Q,G) that the
// GUI visualizes and the ranking function operates on. Each node is a match
// of some query node; each edge (v, v') labelled d stands for a shortest
// data path of length d realizing a query edge between matches.

#ifndef EXPFINDER_MATCHING_RESULT_GRAPH_H_
#define EXPFINDER_MATCHING_RESULT_GRAPH_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/graph_snapshot.h"
#include "src/graph/shortest_paths.h"
#include "src/matching/match_relation.h"
#include "src/query/pattern.h"

namespace expfinder {

class MatchContext;

/// \brief Weighted digraph over the matched data nodes.
class ResultGraph {
 public:
  /// Builds the result graph of `m` over `g`: for every pattern edge
  /// (u, u', bound k) and every pair v in M(u), v' in M(u') with
  /// 0 < dist(v, v') <= k, an edge (v, v') with weight dist(v, v'). Parallel
  /// derivations keep the smallest weight.
  ///
  /// The ctx overload reuses the context's CSR snapshot and BFS buffers
  /// (the engine shares one context between the matcher and this
  /// construction, so a steady-state query builds no per-query CSR at all);
  /// ctx may be nullptr, which falls back to a local snapshot.
  ResultGraph(const Graph& g, const Pattern& q, const MatchRelation& m,
              MatchContext* ctx);
  ResultGraph(const Graph& g, const Pattern& q, const MatchRelation& m)
      : ResultGraph(g, q, m, nullptr) {}

  /// Snapshot form: builds over a published immutable GraphSnapshot,
  /// binding `ctx` (required) to it — the construction rides the
  /// snapshot's shared CSR and whatever ball index the matchers warmed.
  ResultGraph(const SnapshotPtr& s, const Pattern& q, const MatchRelation& m,
              MatchContext* ctx);

  /// Number of result nodes.
  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return num_edges_; }

  /// Data node id at result position `pos`.
  NodeId DataNode(uint32_t pos) const { return nodes_[pos]; }
  /// Result position of data node `v`, if matched.
  std::optional<uint32_t> PositionOf(NodeId v) const;

  /// Weighted adjacency over result positions (weights = path lengths).
  const WeightedAdjacency& Out() const { return out_; }
  const WeightedAdjacency& In() const { return in_; }

  /// Result positions matching pattern node u.
  const std::vector<uint32_t>& MatchesOf(PatternNodeId u) const { return matches_of_[u]; }

 private:
  std::vector<NodeId> nodes_;  // sorted data ids
  std::unordered_map<NodeId, uint32_t> index_;
  WeightedAdjacency out_, in_;
  std::vector<std::vector<uint32_t>> matches_of_;
  size_t num_edges_ = 0;
};

}  // namespace expfinder

#endif  // EXPFINDER_MATCHING_RESULT_GRAPH_H_
