// Bounded simulation matching — the paper's core notion (§II, from Fan et
// al., PVLDB 2010): a pattern edge (u,u') with bound k maps to a *nonempty
// path* of length <= k between matches, so experts who collaborated
// indirectly still match.
//
// ComputeBoundedSimulation runs the cubic-time worklist fixpoint:
//   cnt[e=(u,u')][v] = |{v' in mat(u') : 0 < dist(v,v') <= bound(e)}|
// seeded by forward hop-bounded BFS from every candidate; removing v' from
// mat(u') triggers a reverse bounded BFS decrementing supporters, and zero
// counters cascade. Graph simulation is the special case bound == 1.
//
// ComputeBoundedSimulationNaive re-derives the fixpoint against a dense
// distance matrix; it is the test oracle (graphs <= 4096 nodes).

#ifndef EXPFINDER_MATCHING_BOUNDED_SIMULATION_H_
#define EXPFINDER_MATCHING_BOUNDED_SIMULATION_H_

#include "src/graph/graph.h"
#include "src/graph/graph_snapshot.h"
#include "src/matching/candidates.h"
#include "src/matching/match_relation.h"
#include "src/query/pattern.h"

namespace expfinder {

class MatchContext;

/// Computes M(Q,G) under bounded-simulation semantics. Handles any bounds
/// (including kUnboundedEdge = reachability). The ctx overload reuses the
/// context's versioned CSR snapshot, BFS buffers and counter arrays across
/// calls, and fans the seeding phase out over options.num_threads workers
/// (deterministic: identical results for every thread count). The
/// ctx-less overload constructs a fresh context per call.
MatchRelation ComputeBoundedSimulation(const Graph& g, const Pattern& q,
                                       const MatchOptions& options, MatchContext* ctx);
MatchRelation ComputeBoundedSimulation(const Graph& g, const Pattern& q,
                                       const MatchOptions& options = {});

/// Snapshot form: evaluates against a published immutable GraphSnapshot.
/// Binds `ctx` (required) to the snapshot — the CSR and ball index come
/// from the snapshot, shared with every other reader of the same version,
/// and the binding persists so ResultGraph construction rides the same
/// state. This is the serving path: any number of threads may evaluate
/// against one snapshot concurrently, each with its own context.
MatchRelation ComputeBoundedSimulation(const SnapshotPtr& s, const Pattern& q,
                                       const MatchOptions& options, MatchContext* ctx);

/// Reference implementation against a dense all-pairs distance matrix;
/// requires g.NumNodes() <= 4096.
MatchRelation ComputeBoundedSimulationNaive(const Graph& g, const Pattern& q);

}  // namespace expfinder

#endif  // EXPFINDER_MATCHING_BOUNDED_SIMULATION_H_
