// M(Q,G): the (unique, maximum) match relation between pattern nodes and
// data nodes (paper §II, "Bounded simulation").
//
// Semantics note: bounded simulation requires (1) every pattern node to have
// at least one match and (2) every pair to have its edge constraints
// satisfied. The greatest fixpoint computed by the matchers satisfies (2)
// maximally; if it leaves any pattern node without matches, no relation
// satisfies both, so M(Q,G) is empty. MatchRelation models this: a relation
// where some-but-not-all lists are empty normalizes to the empty relation.

#ifndef EXPFINDER_MATCHING_MATCH_RELATION_H_
#define EXPFINDER_MATCHING_MATCH_RELATION_H_

#include <string>
#include <utility>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/types.h"
#include "src/query/pattern.h"
#include "src/util/dense_bitset.h"

namespace expfinder {

/// \brief The match relation M(Q,G): per pattern node, the sorted list of
/// matching data nodes.
class MatchRelation {
 public:
  MatchRelation() = default;
  explicit MatchRelation(size_t num_pattern_nodes) : matches_(num_pattern_nodes) {}

  /// Builds from a pattern-node x data-node membership bit matrix, applying
  /// the all-or-nothing normalization described above. Word-wise popcounts
  /// pre-size the lists and detect empty rows before any decoding.
  static MatchRelation FromBitmaps(const DenseBitset& in_mat);

  size_t NumPatternNodes() const { return matches_.size(); }

  /// Sorted matches of pattern node u.
  const std::vector<NodeId>& MatchesOf(PatternNodeId u) const { return matches_[u]; }

  /// Replaces u's matches (caller supplies sorted unique ids).
  void SetMatches(PatternNodeId u, std::vector<NodeId> nodes);

  /// Binary-search membership test.
  bool Contains(PatternNodeId u, NodeId v) const;

  /// True when the query has no valid match (every list empty).
  bool IsEmpty() const;

  /// Sum of list sizes.
  size_t TotalPairs() const;

  /// All (pattern node, data node) pairs, ordered.
  std::vector<std::pair<PatternNodeId, NodeId>> AllPairs() const;

  /// Empties every list (the "no match" normal form).
  void Clear();

  bool operator==(const MatchRelation& other) const { return matches_ == other.matches_; }

  /// Renders as {(SA,Bob), (SD,Mat), ...} using pattern/node display names.
  std::string ToString(const Pattern& q, const Graph& g) const;

 private:
  std::vector<std::vector<NodeId>> matches_;
};

/// \brief Net effect of an update batch on a maintained M(Q,G)
/// (Example 3: inserting e1 yields added = {(SD, Fred)}).
struct MatchDelta {
  std::vector<std::pair<PatternNodeId, NodeId>> added;
  std::vector<std::pair<PatternNodeId, NodeId>> removed;

  bool Empty() const { return added.empty() && removed.empty(); }
};

}  // namespace expfinder

#endif  // EXPFINDER_MATCHING_MATCH_RELATION_H_
