// Graph simulation matching (every pattern edge maps to a single data
// edge) — the quadratic-time special case of bounded simulation used when
// all bounds are 1 (paper §II cites [6], Henzinger–Henzinger–Kopke).
//
// ComputeSimulation runs a counting worklist fixpoint in O(|Q| * |E|):
// for each pattern edge e = (u,u') and candidate v of u, cnt[e][v] counts
// v's successors currently matching u'. When a pair is invalidated, its
// predecessors' counters are decremented; zero counters cascade.
//
// ComputeSimulationNaive is the O(rounds * |Q| * |E|) textbook fixpoint kept
// as a test oracle.

#ifndef EXPFINDER_MATCHING_SIMULATION_H_
#define EXPFINDER_MATCHING_SIMULATION_H_

#include "src/graph/graph.h"
#include "src/graph/graph_snapshot.h"
#include "src/matching/candidates.h"
#include "src/matching/match_relation.h"
#include "src/query/pattern.h"

namespace expfinder {

class MatchContext;

/// Computes M(Q,G) under graph-simulation semantics. Every edge bound must
/// be 1 (checked); use ComputeBoundedSimulation otherwise. The ctx overload
/// reuses the context's counter arrays across calls (simulation never needs
/// a CSR snapshot: its inner loops are single-hop adjacency walks).
MatchRelation ComputeSimulation(const Graph& g, const Pattern& q,
                                const MatchOptions& options, MatchContext* ctx);
MatchRelation ComputeSimulation(const Graph& g, const Pattern& q,
                                const MatchOptions& options = {});

/// Snapshot form: evaluates against a published immutable GraphSnapshot,
/// binding `ctx` (required) to it. See bounded_simulation.h.
MatchRelation ComputeSimulation(const SnapshotPtr& s, const Pattern& q,
                                const MatchOptions& options, MatchContext* ctx);

/// Reference implementation (slow, obviously-correct); test oracle.
MatchRelation ComputeSimulationNaive(const Graph& g, const Pattern& q);

}  // namespace expfinder

#endif  // EXPFINDER_MATCHING_SIMULATION_H_
