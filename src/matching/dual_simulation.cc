#include "src/matching/dual_simulation.h"

#include <deque>

#include "src/graph/bfs.h"
#include "src/graph/csr.h"
#include "src/graph/shortest_paths.h"
#include "src/util/logging.h"

namespace expfinder {

MatchRelation ComputeDualSimulation(const Graph& g, const Pattern& q,
                                    const MatchOptions& options) {
  const size_t n = g.NumNodes();
  const size_t ne = q.NumEdges();

  CandidateSets cand = ComputeCandidates(g, q, options);
  std::vector<std::vector<char>> mat = cand.bitmap;
  // Two counter families per pattern edge e = (u,u'):
  //   fwd[e][v]  = |{v' in mat(u') : 0 < dist(v,v')  <= bound}|  (v cand of u)
  //   bwd[e][v'] = |{v  in mat(u)  : 0 < dist(v,v')  <= bound}|  (v' cand of u')
  std::vector<std::vector<int32_t>> fwd(ne), bwd(ne);
  for (auto& c : fwd) c.assign(n, 0);
  for (auto& c : bwd) c.assign(n, 0);

  Csr csr(g);
  BfsBuffers buf;
  buf.EnsureSize(n);
  std::deque<std::pair<PatternNodeId, NodeId>> worklist;

  auto dead = [&](PatternNodeId u, NodeId v) {
    for (uint32_t e : q.OutEdges(u)) {
      if (fwd[e][v] == 0) return true;
    }
    for (uint32_t e : q.InEdges(u)) {
      if (bwd[e][v] == 0) return true;
    }
    return false;
  };

  // Largest bound over u's in-edges (reverse BFS depth from u's matches).
  auto max_in_bound = [&](PatternNodeId u) {
    Distance best = 0;
    for (uint32_t e : q.InEdges(u)) best = std::max(best, q.edges()[e].bound);
    return best;
  };

  // Seed both counter families.
  for (PatternNodeId u = 0; u < q.NumNodes(); ++u) {
    Distance out_depth = q.MaxOutBound(u);
    Distance in_depth = max_in_bound(u);
    for (NodeId v : cand.list[u]) {
      if (out_depth > 0) {
        BoundedBfsNonEmpty<true>(csr, v, out_depth, &buf, [&](NodeId w, Distance d) {
          for (uint32_t e : q.OutEdges(u)) {
            const PatternEdge& pe = q.edges()[e];
            if (d <= pe.bound && mat[pe.dst][w]) ++fwd[e][v];
          }
        });
      }
      if (in_depth > 0) {
        BoundedBfsNonEmpty<false>(csr, v, in_depth, &buf, [&](NodeId w, Distance d) {
          for (uint32_t e : q.InEdges(u)) {
            const PatternEdge& pe = q.edges()[e];
            if (d <= pe.bound && mat[pe.src][w]) ++bwd[e][v];
          }
        });
      }
      if (dead(u, v)) worklist.emplace_back(u, v);
    }
  }

  while (!worklist.empty()) {
    auto [u, v] = worklist.front();
    worklist.pop_front();
    if (!mat[u][v]) continue;
    mat[u][v] = 0;
    // Ancestors lose forward support...
    for (uint32_t e : q.InEdges(u)) {
      const PatternEdge& pe = q.edges()[e];
      auto& counters = fwd[e];
      const auto& src_mat = mat[pe.src];
      BoundedBfsNonEmpty<false>(csr, v, pe.bound, &buf, [&](NodeId w, Distance) {
        if (--counters[w] == 0 && src_mat[w]) {
          worklist.emplace_back(pe.src, w);
        }
      });
    }
    // ...and descendants lose backward support.
    for (uint32_t e : q.OutEdges(u)) {
      const PatternEdge& pe = q.edges()[e];
      auto& counters = bwd[e];
      const auto& dst_mat = mat[pe.dst];
      BoundedBfsNonEmpty<true>(csr, v, pe.bound, &buf, [&](NodeId w, Distance) {
        if (--counters[w] == 0 && dst_mat[w]) {
          worklist.emplace_back(pe.dst, w);
        }
      });
    }
  }
  return MatchRelation::FromBitmaps(mat);
}

MatchRelation ComputeDualSimulationNaive(const Graph& g, const Pattern& q) {
  const size_t n = g.NumNodes();
  const size_t nq = q.NumNodes();
  DistanceMatrix dist(g, q.MaxBound() == kUnboundedEdge
                             ? static_cast<Distance>(n)
                             : q.MaxBound());
  CandidateSets cand = ComputeCandidates(g, q);
  std::vector<std::vector<char>> mat = cand.bitmap;

  bool changed = true;
  while (changed) {
    changed = false;
    for (PatternNodeId u = 0; u < nq; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (!mat[u][v]) continue;
        bool ok = true;
        for (uint32_t e : q.OutEdges(u) /* child constraints */) {
          const PatternEdge& pe = q.edges()[e];
          bool supported = false;
          for (NodeId w = 0; w < n && !supported; ++w) {
            supported = mat[pe.dst][w] && dist.At(v, w) != kUnreachable &&
                        dist.At(v, w) <= pe.bound;
          }
          if (!supported) {
            ok = false;
            break;
          }
        }
        for (uint32_t e : q.InEdges(u) /* parent constraints */) {
          if (!ok) break;
          const PatternEdge& pe = q.edges()[e];
          bool supported = false;
          for (NodeId w = 0; w < n && !supported; ++w) {
            supported = mat[pe.src][w] && dist.At(w, v) != kUnreachable &&
                        dist.At(w, v) <= pe.bound;
          }
          if (!supported) ok = false;
        }
        if (!ok) {
          mat[u][v] = 0;
          changed = true;
        }
      }
    }
  }
  return MatchRelation::FromBitmaps(mat);
}

}  // namespace expfinder
