#include "src/matching/dual_simulation.h"

#include "src/graph/bfs.h"
#include "src/graph/csr.h"
#include "src/graph/khop_index.h"
#include "src/graph/shortest_paths.h"
#include "src/matching/match_context.h"
#include "src/util/flat_queue.h"
#include "src/util/logging.h"

namespace expfinder {

namespace {

/// Hoisted per-pattern-edge seeding state (see bounded_simulation.cc).
struct EdgeRef {
  Distance bound;
  DenseBitset::ConstRow other_mat;  // mat row of the edge's other endpoint
  int32_t* cnt;
};

}  // namespace

MatchRelation ComputeDualSimulation(const Graph& g, const Pattern& q,
                                    const MatchOptions& options, MatchContext* ctx) {
  const size_t n = g.NumNodes();
  const size_t ne = q.NumEdges();

  CandidateSets cand = ComputeCandidates(g, q, options, ctx);
  DenseBitset mat = cand.bitmap;
  // Two counter families per pattern edge e = (u,u'):
  //   fwd[e][v]  = |{v' in mat(u') : 0 < dist(v,v')  <= bound}|  (v cand of u)
  //   bwd[e][v'] = |{v  in mat(u)  : 0 < dist(v,v')  <= bound}|  (v' cand of u')
  auto& fwd = ctx->Counters(0, ne, n);
  auto& bwd = ctx->Counters(1, ne, n);

  const Csr& csr = ctx->SnapshotFor(g);
  const KhopIndex* ball =
      ctx->BallIndexFor(g, q.MaxFiniteBound(), options.ball_index, options.num_threads);
  const bool count_fallbacks = options.ball_index.enabled;
  size_t ball_hits = 0;
  size_t bfs_fallbacks = 0;
  FlatQueue<std::pair<PatternNodeId, NodeId>> worklist;

  auto dead = [&](PatternNodeId u, NodeId v) {
    for (uint32_t e : q.OutEdges(u)) {
      if (fwd[e][v] == 0) return true;
    }
    for (uint32_t e : q.InEdges(u)) {
      if (bwd[e][v] == 0) return true;
    }
    return false;
  };

  // Largest bound over u's in-edges (reverse BFS depth from u's matches).
  auto max_in_bound = [&](PatternNodeId u) {
    Distance best = 0;
    for (uint32_t e : q.InEdges(u)) best = std::max(best, q.edges()[e].bound);
    return best;
  };

  // Seed both counter families — ball scans against the mat bitset where
  // the index covers the candidate, the original two bounded BFS sweeps
  // where it does not. Parallel like the bounded matcher: mat is read-only,
  // both directions for candidate v write only fwd/bwd[...][v], and
  // per-worker dead lists concatenated in worker order reproduce the serial
  // worklist exactly.
  for (PatternNodeId u = 0; u < q.NumNodes(); ++u) {
    Distance out_depth = q.MaxOutBound(u);
    Distance in_depth = max_in_bound(u);
    const auto& list = cand.list[u];
    const bool out_indexed =
        ball != nullptr && out_depth > 0 && out_depth <= ball->depth();
    const bool in_indexed = ball != nullptr && in_depth > 0 && in_depth <= ball->depth();
    std::vector<EdgeRef> out_refs, in_refs;
    out_refs.reserve(q.OutEdges(u).size());
    for (uint32_t e : q.OutEdges(u)) {
      const PatternEdge& pe = q.edges()[e];
      out_refs.push_back({pe.bound, mat.Row(pe.dst), fwd[e].data()});
    }
    in_refs.reserve(q.InEdges(u).size());
    for (uint32_t e : q.InEdges(u)) {
      const PatternEdge& pe = q.edges()[e];
      in_refs.push_back({pe.bound, mat.Row(pe.src), bwd[e].data()});
    }
    auto seed_slice = [&](size_t worker, size_t begin, size_t end,
                          std::vector<NodeId>* dead_out, size_t* hits, size_t* falls) {
      BfsBuffers& buf = ctx->Buffers(worker);
      for (size_t i = begin; i < end; ++i) {
        NodeId v = list[i];
        if (out_depth > 0) {
          if (out_indexed && ball->HasOut(v)) {
            ++*hits;
            for (Distance d = 1; d <= out_depth; ++d) {
              for (NodeId w : ball->StratumOut(v, d)) {
                for (const EdgeRef& er : out_refs) {
                  if (d <= er.bound && er.other_mat[w]) ++er.cnt[v];
                }
              }
            }
          } else {
            if (count_fallbacks) ++*falls;
            BoundedBfsNonEmpty<true>(csr, v, out_depth, &buf, [&](NodeId w, Distance d) {
              for (const EdgeRef& er : out_refs) {
                if (d <= er.bound && er.other_mat[w]) ++er.cnt[v];
              }
            });
          }
        }
        if (in_depth > 0) {
          if (in_indexed && ball->HasIn(v)) {
            ++*hits;
            for (Distance d = 1; d <= in_depth; ++d) {
              for (NodeId w : ball->StratumIn(v, d)) {
                for (const EdgeRef& er : in_refs) {
                  if (d <= er.bound && er.other_mat[w]) ++er.cnt[v];
                }
              }
            }
          } else {
            if (count_fallbacks) ++*falls;
            BoundedBfsNonEmpty<false>(csr, v, in_depth, &buf, [&](NodeId w, Distance d) {
              for (const EdgeRef& er : in_refs) {
                if (d <= er.bound && er.other_mat[w]) ++er.cnt[v];
              }
            });
          }
        }
        if (dead(u, v)) dead_out->push_back(v);
      }
    };
    const size_t workers = ctx->SeedWorkers(options.num_threads, list.size());
    ctx->EnsureBuffers(workers, n);
    if (workers <= 1) {
      std::vector<NodeId> dead_list;
      seed_slice(0, 0, list.size(), &dead_list, &ball_hits, &bfs_fallbacks);
      for (NodeId v : dead_list) worklist.emplace_back(u, v);
    } else {
      std::vector<std::vector<NodeId>> dead_lists(workers);
      std::vector<size_t> hits(workers, 0), falls(workers, 0);
      ctx->Pool(workers).ParallelChunks(
          list.size(), workers, [&](size_t worker, size_t begin, size_t end) {
            seed_slice(worker, begin, end, &dead_lists[worker], &hits[worker],
                       &falls[worker]);
          });
      for (size_t w = 0; w < workers; ++w) {
        ball_hits += hits[w];
        bfs_fallbacks += falls[w];
        for (NodeId v : dead_lists[w]) worklist.emplace_back(u, v);
      }
    }
  }

  // Sequential refinement (see bounded_simulation.cc for the rationale);
  // supporter decrements scan the precomputed balls in both directions.
  BfsBuffers& buf = ctx->Buffers(0);
  while (!worklist.empty()) {
    auto [u, v] = worklist.front();
    worklist.pop_front();
    if (!mat.Test(u, v)) continue;
    mat.Reset(u, v);
    // Ancestors lose forward support...
    for (uint32_t e : q.InEdges(u)) {
      const PatternEdge& pe = q.edges()[e];
      auto& counters = fwd[e];
      const auto src_mat = mat.Row(pe.src);
      if (ball != nullptr && pe.bound <= ball->depth() && ball->HasIn(v)) {
        ++ball_hits;
        for (NodeId w : ball->BallIn(v, pe.bound)) {
          if (--counters[w] == 0 && src_mat[w]) {
            worklist.emplace_back(pe.src, w);
          }
        }
      } else {
        if (count_fallbacks) ++bfs_fallbacks;
        BoundedBfsNonEmpty<false>(csr, v, pe.bound, &buf, [&](NodeId w, Distance) {
          if (--counters[w] == 0 && src_mat[w]) {
            worklist.emplace_back(pe.src, w);
          }
        });
      }
    }
    // ...and descendants lose backward support.
    for (uint32_t e : q.OutEdges(u)) {
      const PatternEdge& pe = q.edges()[e];
      auto& counters = bwd[e];
      const auto dst_mat = mat.Row(pe.dst);
      if (ball != nullptr && pe.bound <= ball->depth() && ball->HasOut(v)) {
        ++ball_hits;
        for (NodeId w : ball->BallOut(v, pe.bound)) {
          if (--counters[w] == 0 && dst_mat[w]) {
            worklist.emplace_back(pe.dst, w);
          }
        }
      } else {
        if (count_fallbacks) ++bfs_fallbacks;
        BoundedBfsNonEmpty<true>(csr, v, pe.bound, &buf, [&](NodeId w, Distance) {
          if (--counters[w] == 0 && dst_mat[w]) {
            worklist.emplace_back(pe.dst, w);
          }
        });
      }
    }
  }
  ctx->AddBallStats(ball_hits, bfs_fallbacks);
  return MatchRelation::FromBitmaps(mat);
}

MatchRelation ComputeDualSimulation(const Graph& g, const Pattern& q,
                                    const MatchOptions& options) {
  MatchContext ctx;
  return ComputeDualSimulation(g, q, options, &ctx);
}

MatchRelation ComputeDualSimulation(const SnapshotPtr& s, const Pattern& q,
                                    const MatchOptions& options, MatchContext* ctx) {
  ctx->BindSnapshot(s);
  return ComputeDualSimulation(s->graph(), q, options, ctx);
}

MatchRelation ComputeDualSimulationNaive(const Graph& g, const Pattern& q) {
  const size_t n = g.NumNodes();
  const size_t nq = q.NumNodes();
  DistanceMatrix dist(g, q.MaxBound() == kUnboundedEdge
                             ? static_cast<Distance>(n)
                             : q.MaxBound());
  CandidateSets cand = ComputeCandidates(g, q);
  DenseBitset mat = cand.bitmap;

  bool changed = true;
  while (changed) {
    changed = false;
    for (PatternNodeId u = 0; u < nq; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (!mat.Test(u, v)) continue;
        bool ok = true;
        for (uint32_t e : q.OutEdges(u) /* child constraints */) {
          const PatternEdge& pe = q.edges()[e];
          bool supported = false;
          for (NodeId w = 0; w < n && !supported; ++w) {
            supported = mat.Test(pe.dst, w) && dist.At(v, w) != kUnreachable &&
                        dist.At(v, w) <= pe.bound;
          }
          if (!supported) {
            ok = false;
            break;
          }
        }
        for (uint32_t e : q.InEdges(u) /* parent constraints */) {
          if (!ok) break;
          const PatternEdge& pe = q.edges()[e];
          bool supported = false;
          for (NodeId w = 0; w < n && !supported; ++w) {
            supported = mat.Test(pe.src, w) && dist.At(w, v) != kUnreachable &&
                        dist.At(w, v) <= pe.bound;
          }
          if (!supported) ok = false;
        }
        if (!ok) {
          mat.Reset(u, v);
          changed = true;
        }
      }
    }
  }
  return MatchRelation::FromBitmaps(mat);
}

}  // namespace expfinder
