// Candidate-set computation shared by all matchers: for each pattern node,
// the data nodes satisfying its label requirement and search conditions
// (structure is checked later by the fixpoints).
//
// Conditions are compiled once per (pattern, graph): attribute names resolve
// to interned key ids, and a pattern node whose label or attribute key does
// not exist in the graph is marked impossible without scanning.

#ifndef EXPFINDER_MATCHING_CANDIDATES_H_
#define EXPFINDER_MATCHING_CANDIDATES_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/query/pattern.h"

namespace expfinder {

/// \brief Tunables shared by the matchers.
struct MatchOptions {
  /// Initialize candidates from the graph's label index instead of scanning
  /// every node (the planner's main lever; see bench_ablation).
  bool use_label_index = true;
};

/// \brief Per-pattern-node candidate sets in both bitmap and list form.
struct CandidateSets {
  /// bitmap[u][v] != 0 iff data node v satisfies pattern node u's label and
  /// conditions.
  std::vector<std::vector<char>> bitmap;
  /// The same sets as sorted id lists.
  std::vector<std::vector<NodeId>> list;
};

/// Computes candidate sets for every pattern node.
CandidateSets ComputeCandidates(const Graph& g, const Pattern& q,
                                const MatchOptions& options = {});

}  // namespace expfinder

#endif  // EXPFINDER_MATCHING_CANDIDATES_H_
