// Candidate-set computation shared by all matchers: for each pattern node,
// the data nodes satisfying its label requirement and search conditions
// (structure is checked later by the fixpoints).
//
// Conditions are compiled once per (pattern, graph): attribute names resolve
// to interned key ids, and a pattern node whose label or attribute key does
// not exist in the graph is marked impossible without scanning.

#ifndef EXPFINDER_MATCHING_CANDIDATES_H_
#define EXPFINDER_MATCHING_CANDIDATES_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/khop_index.h"
#include "src/index/topic_index.h"
#include "src/query/pattern.h"
#include "src/util/dense_bitset.h"

namespace expfinder {

class MatchContext;

/// \brief Tunables shared by the matchers.
struct MatchOptions {
  /// Initialize candidates from the graph's label index instead of scanning
  /// every node (the planner's main lever; see bench_ablation).
  bool use_label_index = true;
  /// Worker threads for the matchers' parallelizable seeding phase.
  /// 0 = hardware_concurrency (capped so each worker gets meaningful work);
  /// 1 forces the serial path; N > 1 is honoured as-is. The result is
  /// bit-for-bit identical for every thread count.
  uint32_t num_threads = 0;
  /// Ball-index participation and memory caps (see khop_index.h). The
  /// relation is bit-identical with the index enabled, disabled, or capped
  /// into fallback; only the traversal cost changes.
  BallIndexOptions ball_index;
  /// Topic-index participation for text-predicate seeding (see
  /// index/topic_index.h). Same contract as the ball index: relations are
  /// bit-identical enabled, disabled, or capped — only who gets probed
  /// changes.
  TopicIndexOptions topic_index;
};

/// \brief Per-pattern-node candidate sets in both bitmap and list form.
struct CandidateSets {
  /// Test(u, v) iff data node v satisfies pattern node u's label and
  /// conditions (nq x n flat bit matrix).
  DenseBitset bitmap;
  /// The same sets as sorted id lists.
  std::vector<std::vector<NodeId>> list;
};

/// \brief Telemetry from one topic-seeded candidate computation.
struct TopicSeedStats {
  /// Pattern nodes whose candidates came from a posting list (including the
  /// degenerate "token unknown, set provably empty" hit).
  size_t posting_hits = 0;
  /// Pattern nodes with text predicates that scanned anyway: index missing,
  /// deferred, refused, or the best posting list no smaller than the scan.
  size_t seed_scan_fallbacks = 0;
};

/// Computes candidate sets for every pattern node.
CandidateSets ComputeCandidates(const Graph& g, const Pattern& q,
                                const MatchOptions& options = {});

/// Topic-seeded variant: pattern nodes carrying text predicates (string
/// equality / has_token) draw their candidate universe from the smallest
/// applicable posting list of `topics` instead of a label scan, then
/// re-verify exactly — the result is bit-identical to the plain overload.
/// `topics` may be nullptr (plain seeding; text nodes count as fallbacks).
/// `stats` may be nullptr.
CandidateSets ComputeCandidates(const Graph& g, const Pattern& q,
                                const MatchOptions& options,
                                const TopicIndex* topics, TopicSeedStats* stats);
/// Same, over the engine's incrementally maintained index (non-const: dirty
/// terms re-derive lazily on access).
CandidateSets ComputeCandidates(const Graph& g, const Pattern& q,
                                const MatchOptions& options,
                                MaintainedTopicIndex* topics, TopicSeedStats* stats);

/// Matcher entry point: resolves the snapshot topic index through `ctx`
/// (building it when the deferred threshold is crossed) for patterns with
/// text predicates, seeds from postings, and accounts the telemetry into
/// `ctx`. Falls back to the plain overload when `ctx` is null, the index is
/// disabled, or the pattern has no text predicates — non-text queries never
/// touch (or age) the slot.
CandidateSets ComputeCandidates(const Graph& g, const Pattern& q,
                                const MatchOptions& options, MatchContext* ctx);

}  // namespace expfinder

#endif  // EXPFINDER_MATCHING_CANDIDATES_H_
