// Candidate-set computation shared by all matchers: for each pattern node,
// the data nodes satisfying its label requirement and search conditions
// (structure is checked later by the fixpoints).
//
// Conditions are compiled once per (pattern, graph): attribute names resolve
// to interned key ids, and a pattern node whose label or attribute key does
// not exist in the graph is marked impossible without scanning.

#ifndef EXPFINDER_MATCHING_CANDIDATES_H_
#define EXPFINDER_MATCHING_CANDIDATES_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/khop_index.h"
#include "src/query/pattern.h"
#include "src/util/dense_bitset.h"

namespace expfinder {

/// \brief Tunables shared by the matchers.
struct MatchOptions {
  /// Initialize candidates from the graph's label index instead of scanning
  /// every node (the planner's main lever; see bench_ablation).
  bool use_label_index = true;
  /// Worker threads for the matchers' parallelizable seeding phase.
  /// 0 = hardware_concurrency (capped so each worker gets meaningful work);
  /// 1 forces the serial path; N > 1 is honoured as-is. The result is
  /// bit-for-bit identical for every thread count.
  uint32_t num_threads = 0;
  /// Ball-index participation and memory caps (see khop_index.h). The
  /// relation is bit-identical with the index enabled, disabled, or capped
  /// into fallback; only the traversal cost changes.
  BallIndexOptions ball_index;
};

/// \brief Per-pattern-node candidate sets in both bitmap and list form.
struct CandidateSets {
  /// Test(u, v) iff data node v satisfies pattern node u's label and
  /// conditions (nq x n flat bit matrix).
  DenseBitset bitmap;
  /// The same sets as sorted id lists.
  std::vector<std::vector<NodeId>> list;
};

/// Computes candidate sets for every pattern node.
CandidateSets ComputeCandidates(const Graph& g, const Pattern& q,
                                const MatchOptions& options = {});

}  // namespace expfinder

#endif  // EXPFINDER_MATCHING_CANDIDATES_H_
