// Per-engine scratch state reused across queries — the amortization layer
// of the matching hot path.
//
// Every batch matcher used to pay three avoidable constant-factor costs on
// *each* call: an O(n+m) Csr snapshot of the (usually unchanged) graph,
// fresh BFS scratch buffers, and fresh per-pattern-edge counter arrays. A
// MatchContext owns all three and hands them out for reuse:
//
//   * SnapshotFor(g) returns a Csr rebuilt only when the graph identity or
//     its version() changed since the last call — in the query engine's
//     steady state (no updates between queries) the snapshot is built once
//     and shared by the matchers *and* ResultGraph construction.
//   * EnsureBuffers/Buffers provide one BfsBuffers per parallel seeding
//     worker (worker 0 doubles as the serial-path buffer).
//   * Counters provides the per-edge int32 counter arrays (two independent
//     pools, because dual simulation needs a forward and a backward family).
//   * Pool lazily owns the ThreadPool used for parallel seeding.
//
// A MatchContext is single-owner state: it must not be shared between
// threads, and at most one matcher may run against it at a time (the
// matchers themselves fan out internally via Pool()). Stateless callers can
// simply construct a fresh MatchContext per call — that is exactly the old
// behaviour — which is what the thin compatibility overloads of the
// matchers do. Concurrent callers give each worker its *own* context: the
// ExpFinderService keeps a pool of per-worker contexts and leases one to
// every in-flight query, so snapshots and scratch never cross threads.

#ifndef EXPFINDER_MATCHING_MATCH_CONTEXT_H_
#define EXPFINDER_MATCHING_MATCH_CONTEXT_H_

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/graph/bfs.h"
#include "src/graph/csr.h"
#include "src/graph/graph.h"
#include "src/graph/graph_snapshot.h"
#include "src/graph/khop_index.h"
#include "src/util/thread_pool.h"

namespace expfinder {

/// \brief Versioned CSR snapshot cache + reusable matcher scratch.
class MatchContext {
 public:
  MatchContext() = default;
  MatchContext(const MatchContext&) = delete;
  MatchContext& operator=(const MatchContext&) = delete;

  /// Binds this context to a published GraphSnapshot: while bound, every
  /// SnapshotFor / BallIndexFor / CachedBallIndex call against the
  /// snapshot's graph is answered from the snapshot itself — the shared,
  /// pre-built CSR and the shared lazily-built ball index — instead of the
  /// context's private (uid, version)-keyed slots. The context retains the
  /// handle, pinning the snapshot for as long as the binding lasts (a
  /// worker binds per request; the engine rebinds at each publish).
  /// Binding nullptr unbinds. The private slots are untouched either way,
  /// so unbound use (the pre-snapshot paths, tests, oracles) behaves
  /// exactly as before.
  void BindSnapshot(SnapshotPtr snapshot) { snapshot_ = std::move(snapshot); }
  const SnapshotPtr& bound_snapshot() const { return snapshot_; }

  /// The CSR snapshot of `g`, rebuilt only when the cached snapshot was
  /// taken from a different graph — keyed on (address, Graph::uid(),
  /// version()); the uid catches a Graph re-constructed in place whose
  /// restarted version counter collides with the cached one. The reference
  /// stays valid until the next SnapshotFor with a changed graph. When `g`
  /// is the bound snapshot's graph, returns the snapshot's shared CSR
  /// without building anything.
  const Csr& SnapshotFor(const Graph& g);

  /// Drops the cached snapshot and the ball index derived from it (next
  /// SnapshotFor / BallIndexFor rebuild).
  void InvalidateSnapshot();

  /// How many times a snapshot has been (re)built — the steady-state
  /// regression signal: repeated queries on an unmutated graph must not
  /// increase this.
  size_t snapshot_builds() const { return snapshot_builds_; }

  /// The cached k-hop ball index for `g` at (at least) `depth`, building it
  /// if needed, or nullptr when the matcher must BFS instead: the index is
  /// disabled, `depth` is 0 / unbounded / beyond limits.max_depth, or the
  /// build blew limits.max_total_entries (the failure is memoized per
  /// (graph, version, limits) so refused queries don't re-pay the build).
  /// Keyed like SnapshotFor — (address, uid, version) — plus the limits, so
  /// a per-request cap change never serves an index built under different
  /// caps. Grow-only in depth within one key: a deeper request rebuilds,
  /// shallower requests reuse (smaller balls are prefixes of deeper ones).
  /// Build is additionally *deferred*: the first
  /// BallIndexOptions::build_after_uses - 1 calls against a fresh key
  /// return nullptr without building, so only graph versions with
  /// demonstrated reuse pay the O(n) construction.
  const KhopIndex* BallIndexFor(const Graph& g, Distance depth,
                                const BallIndexOptions& limits, uint32_t num_threads);

  /// The already-built index for `g` at its current version, or nullptr —
  /// never builds, never counts a use. For secondary consumers
  /// (ResultGraph construction) that ride on whatever the matchers warmed.
  const KhopIndex* CachedBallIndex(const Graph& g) const {
    if (snapshot_ != nullptr && &snapshot_->graph() == &g) {
      return snapshot_->CachedBallIndex();
    }
    if (ball_index_ != nullptr && ball_graph_ == &g && ball_uid_ == g.uid() &&
        ball_version_ == g.version()) {
      return ball_index_.get();
    }
    return nullptr;
  }

  /// Successful ball-index (re)builds, and the matchers' traversal-path
  /// tallies: ball_hits counts traversals served from the index,
  /// bfs_fallbacks counts traversals that ran a BFS although the index was
  /// requested (no index, depth beyond it, overflowed hub).
  size_t ball_index_builds() const { return ball_index_builds_; }
  size_t ball_hits() const { return ball_hits_; }
  size_t bfs_fallbacks() const { return bfs_fallbacks_; }

  /// Matchers report their per-run tallies here (single-owner, like all
  /// context state — parallel seeding phases accumulate per-worker and
  /// report once).
  void AddBallStats(size_t hits, size_t fallbacks) {
    ball_hits_ += hits;
    bfs_fallbacks_ += fallbacks;
  }

  /// The shared topic inverted index of the bound snapshot's graph, building
  /// it if this call crosses its deferred threshold (counted in
  /// topic_index_builds). The topic index lives on published snapshots only:
  /// an unbound context — or a call against some other graph — returns
  /// nullptr and the caller keeps its scans, which preserves the
  /// pre-snapshot paths (tests, oracles, incremental bases) untouched.
  const TopicIndex* TopicIndexFor(const Graph& g, const TopicIndexOptions& limits);

  /// Topic-index builds this context triggered, and the seeding tallies
  /// reported by AddTopicStats (see TopicSeedStats in candidates.h).
  size_t topic_index_builds() const { return topic_index_builds_; }
  size_t posting_hits() const { return posting_hits_; }
  size_t seed_scan_fallbacks() const { return seed_scan_fallbacks_; }

  void AddTopicStats(size_t posting_hits, size_t scan_fallbacks) {
    posting_hits_ += posting_hits;
    seed_scan_fallbacks_ += scan_fallbacks;
  }

  /// Makes workers [0, num_workers) usable, each sized for n nodes. Must be
  /// called before Buffers() — in particular before fanning out, since
  /// growing the worker list from inside workers would race.
  void EnsureBuffers(size_t num_workers, size_t n);

  /// Scratch buffers of `worker` (EnsureBuffers must have covered it).
  BfsBuffers& Buffers(size_t worker) { return buffers_[worker]; }

  /// Reusable counter arrays: `count` arrays of `n` zeroed int32s.
  /// `pool_index` selects an independent family (0 and 1), so dual
  /// simulation can hold its forward and backward counters simultaneously.
  std::vector<std::vector<int32_t>>& Counters(size_t pool_index, size_t count, size_t n);

  /// The seeding thread pool. Grow-only: an existing pool with at least
  /// `num_workers` workers is reused as-is (dispatch with an explicit
  /// active count via ParallelChunks); a larger request replaces it. This
  /// keeps the per-query path free of thread spawn/join churn even when
  /// candidate-list sizes (and therefore SeedWorkers) vary per pattern node.
  ThreadPool& Pool(size_t num_workers);

  /// Worker count for a seeding phase over `work_items` units.
  /// requested == 1 forces the serial path; requested == 0 resolves to
  /// hardware_concurrency and is additionally capped so each worker gets a
  /// meaningful amount of work; an explicit requested > 1 is honoured (only
  /// capped by work_items) so tests can force the parallel path on small
  /// inputs.
  size_t SeedWorkers(uint32_t requested, size_t work_items) const;

 private:
  /// Bound published snapshot (nullptr = unbound, private slots serve).
  SnapshotPtr snapshot_;

  const Graph* snapshot_graph_ = nullptr;
  uint64_t snapshot_uid_ = 0;
  uint64_t snapshot_version_ = 0;
  std::unique_ptr<Csr> csr_;
  size_t snapshot_builds_ = 0;

  std::unique_ptr<KhopIndex> ball_index_;
  const Graph* ball_graph_ = nullptr;
  uint64_t ball_uid_ = 0;
  uint64_t ball_version_ = 0;
  BallIndexOptions ball_limits_;
  /// Smallest depth whose build failed under the current key (0 = none):
  /// deeper builds can only be bigger, so they are refused without retrying.
  Distance ball_failed_depth_ = 0;
  /// Matcher runs observed against the current key (drives deferred build).
  size_t ball_key_uses_ = 0;
  size_t ball_index_builds_ = 0;
  size_t ball_hits_ = 0;
  size_t bfs_fallbacks_ = 0;

  size_t topic_index_builds_ = 0;
  size_t posting_hits_ = 0;
  size_t seed_scan_fallbacks_ = 0;

  std::deque<BfsBuffers> buffers_;  // deque: stable addresses across growth
  std::array<std::vector<std::vector<int32_t>>, 2> counters_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace expfinder

#endif  // EXPFINDER_MATCHING_MATCH_CONTEXT_H_
