#include "src/matching/match_relation.h"

#include <algorithm>
#include <sstream>

#include "src/util/logging.h"

namespace expfinder {

MatchRelation MatchRelation::FromBitmaps(const DenseBitset& in_mat) {
  MatchRelation m(in_mat.NumRows());
  for (size_t u = 0; u < in_mat.NumRows(); ++u) {
    if (in_mat.CountRow(u) == 0) {
      // Some pattern node has no match: the whole relation is empty.
      return m;
    }
  }
  for (size_t u = 0; u < in_mat.NumRows(); ++u) {
    std::vector<NodeId>& list = m.matches_[u];
    list.reserve(in_mat.CountRow(u));
    in_mat.ForEachInRow(u, [&](size_t v) { list.push_back(static_cast<NodeId>(v)); });
  }
  return m;
}

void MatchRelation::SetMatches(PatternNodeId u, std::vector<NodeId> nodes) {
  EF_CHECK(u < matches_.size());
  EF_DCHECK(std::is_sorted(nodes.begin(), nodes.end()));
  matches_[u] = std::move(nodes);
}

bool MatchRelation::Contains(PatternNodeId u, NodeId v) const {
  if (u >= matches_.size()) return false;
  const auto& list = matches_[u];
  return std::binary_search(list.begin(), list.end(), v);
}

bool MatchRelation::IsEmpty() const {
  for (const auto& list : matches_) {
    if (!list.empty()) return false;
  }
  return true;
}

size_t MatchRelation::TotalPairs() const {
  size_t total = 0;
  for (const auto& list : matches_) total += list.size();
  return total;
}

std::vector<std::pair<PatternNodeId, NodeId>> MatchRelation::AllPairs() const {
  std::vector<std::pair<PatternNodeId, NodeId>> out;
  out.reserve(TotalPairs());
  for (PatternNodeId u = 0; u < matches_.size(); ++u) {
    for (NodeId v : matches_[u]) out.emplace_back(u, v);
  }
  return out;
}

void MatchRelation::Clear() {
  for (auto& list : matches_) list.clear();
}

std::string MatchRelation::ToString(const Pattern& q, const Graph& g) const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (PatternNodeId u = 0; u < matches_.size(); ++u) {
    for (NodeId v : matches_[u]) {
      if (!first) os << ", ";
      first = false;
      os << "(" << q.node(u).name << "," << g.DisplayName(v) << ")";
    }
  }
  os << "}";
  return os.str();
}

}  // namespace expfinder
