// Bounded *dual* simulation — the natural strengthening of bounded
// simulation from the same research line (Ma et al., "Capturing topology in
// graph pattern matching", PVLDB 2011): a match must satisfy its pattern
// node's *incoming* edges too, i.e. have the required ancestors, not just
// descendants. This prunes "stray" matches that bounded simulation admits
// (e.g. a tester nobody on the team ever worked with), at the same
// asymptotic cost. Listed as an extension experiment E8/E9 in DESIGN.md.
//
// Semantics: M(Q,G) is the maximum relation such that every pattern node
// has a match and for each (u,v) in M:
//   - v satisfies u's label and search conditions;
//   - for every pattern edge (u,u') with bound k there is v' with
//     (u',v') in M and a nonempty path v -> v' of length <= k;
//   - for every pattern edge (u'',u) with bound k there is v'' with
//     (u'',v'') in M and a nonempty path v'' -> v of length <= k.
//
// Dual simulation is contained in bounded simulation (it only adds
// constraints); with all bounds 1 and no in-edge constraints it degenerates
// to plain simulation.

#ifndef EXPFINDER_MATCHING_DUAL_SIMULATION_H_
#define EXPFINDER_MATCHING_DUAL_SIMULATION_H_

#include "src/graph/graph.h"
#include "src/graph/graph_snapshot.h"
#include "src/matching/candidates.h"
#include "src/matching/match_relation.h"
#include "src/query/pattern.h"

namespace expfinder {

class MatchContext;

/// Computes M(Q,G) under bounded dual-simulation semantics (any bounds,
/// cyclic patterns, kUnboundedEdge supported). The ctx overload reuses the
/// context's versioned CSR snapshot, BFS buffers and both counter families
/// across calls, and parallelizes the seeding phase deterministically over
/// options.num_threads workers.
MatchRelation ComputeDualSimulation(const Graph& g, const Pattern& q,
                                    const MatchOptions& options, MatchContext* ctx);
MatchRelation ComputeDualSimulation(const Graph& g, const Pattern& q,
                                    const MatchOptions& options = {});

/// Snapshot form: evaluates against a published immutable GraphSnapshot,
/// binding `ctx` (required) to it. See bounded_simulation.h.
MatchRelation ComputeDualSimulation(const SnapshotPtr& s, const Pattern& q,
                                    const MatchOptions& options, MatchContext* ctx);

/// Reference implementation against a dense distance matrix; test oracle
/// (graphs <= 4096 nodes).
MatchRelation ComputeDualSimulationNaive(const Graph& g, const Pattern& q);

}  // namespace expfinder

#endif  // EXPFINDER_MATCHING_DUAL_SIMULATION_H_
