#include "src/matching/explain.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace expfinder {

namespace {

/// Bounded BFS with parent tracking; returns the shortest nonempty path
/// from src to the first node satisfying `is_target`, or empty when none
/// exists within `max_depth`.
template <typename Pred>
std::vector<NodeId> ShortestPathTo(const Graph& g, NodeId src, Distance max_depth,
                                   Pred&& is_target) {
  std::unordered_map<NodeId, NodeId> parent;  // child -> parent on BFS tree
  std::unordered_map<NodeId, Distance> depth;
  std::vector<NodeId> queue;
  // Seed with out-neighbors so src itself can be a target via a cycle.
  for (NodeId w : g.OutNeighbors(src)) {
    if (!depth.count(w)) {
      depth[w] = 1;
      parent[w] = src;
      queue.push_back(w);
    }
  }
  size_t head = 0;
  while (head < queue.size()) {
    NodeId v = queue[head++];
    Distance d = depth[v];
    if (is_target(v)) {
      // Walk the parent chain back to src. Works for v == src too (a cycle
      // witness): the chain from a cyclically re-discovered src leads back
      // to src through its BFS tree, yielding src ... src.
      std::vector<NodeId> path{v};
      NodeId x = v;
      do {
        x = parent.at(x);
        path.push_back(x);
      } while (x != src);
      std::reverse(path.begin(), path.end());
      return path;
    }
    if (d >= max_depth) continue;
    for (NodeId w : g.OutNeighbors(v)) {
      if (!depth.count(w)) {
        depth[w] = d + 1;
        parent[w] = v;
        queue.push_back(w);
      }
    }
  }
  return {};
}

}  // namespace

Result<MatchExplanation> ExplainMatch(const Graph& g, const Pattern& q,
                                      const MatchRelation& m, PatternNodeId u,
                                      NodeId v) {
  if (u >= q.NumNodes()) return Status::InvalidArgument("pattern node out of range");
  if (!g.IsValidNode(v)) return Status::InvalidArgument("data node out of range");
  if (!m.Contains(u, v)) {
    return Status::NotFound("(" + q.node(u).name + ", " + g.DisplayName(v) +
                            ") is not in the match relation");
  }
  MatchExplanation out;
  out.pattern_node = u;
  out.data_node = v;
  for (uint32_t e : q.OutEdges(u)) {
    const PatternEdge& pe = q.edges()[e];
    std::vector<NodeId> path = ShortestPathTo(
        g, v, pe.bound, [&](NodeId w) { return m.Contains(pe.dst, w); });
    if (path.empty()) {
      return Status::Internal("match relation inconsistent: no witness for edge " +
                              q.node(pe.src).name + " -> " + q.node(pe.dst).name);
    }
    out.witnesses.push_back({e, std::move(path)});
  }
  return out;
}

std::string MatchExplanation::ToString(const Graph& g, const Pattern& q) const {
  std::ostringstream os;
  os << g.DisplayName(data_node) << " matches " << q.node(pattern_node).name << ":\n";
  for (const EdgeWitness& w : witnesses) {
    const PatternEdge& pe = q.edges()[w.edge_index];
    os << "  " << q.node(pe.src).name << " -[<=";
    if (pe.bound == kUnboundedEdge) {
      os << "*";
    } else {
      os << pe.bound;
    }
    os << "]-> " << q.node(pe.dst).name << ": ";
    for (size_t i = 0; i < w.path.size(); ++i) {
      if (i) os << " -> ";
      os << g.DisplayName(w.path[i]);
    }
    os << " (length " << (w.path.size() - 1) << ")\n";
  }
  return os.str();
}

}  // namespace expfinder
