// Match explanations: the witness paths behind a match (the "drill down"
// view of the demo GUI, §III — inspecting *why* an expert matches). For a
// pair (u, v) in M(Q,G), every pattern edge (u, u') is justified by a
// shortest path from v to some match of u' within the bound; this module
// extracts those paths.

#ifndef EXPFINDER_MATCHING_EXPLAIN_H_
#define EXPFINDER_MATCHING_EXPLAIN_H_

#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/matching/match_relation.h"
#include "src/query/pattern.h"
#include "src/util/result.h"

namespace expfinder {

/// \brief Justification of one pattern edge at one match: the shortest data
/// path from the match to the nearest match of the edge's target.
struct EdgeWitness {
  /// Index into Pattern::edges().
  uint32_t edge_index = 0;
  /// Data path v = path[0] -> ... -> path.back() (a match of the target);
  /// length = path.size() - 1 <= bound.
  std::vector<NodeId> path;
};

/// \brief Full justification of a match pair (u, v): one witness per
/// outgoing pattern edge of u.
struct MatchExplanation {
  PatternNodeId pattern_node = 0;
  NodeId data_node = kInvalidNode;
  std::vector<EdgeWitness> witnesses;

  /// Human-readable rendering with display names, e.g.
  ///   Bob matches SA:
  ///     SA -[<=2]-> SD: Bob -> Dan (length 1)
  std::string ToString(const Graph& g, const Pattern& q) const;
};

/// Extracts witnesses for (u, v); fails with NotFound when (u, v) is not in
/// `m`, InvalidArgument on bad indices. The returned paths are shortest
/// (witness length == the result graph's edge weight).
Result<MatchExplanation> ExplainMatch(const Graph& g, const Pattern& q,
                                      const MatchRelation& m, PatternNodeId u,
                                      NodeId v);

}  // namespace expfinder

#endif  // EXPFINDER_MATCHING_EXPLAIN_H_
