#include "src/matching/vf2.h"

#include <algorithm>

#include "src/matching/candidates.h"

namespace expfinder {

namespace {

/// Chooses a matching order: start from the most selective node, then
/// greedily prefer nodes adjacent to already-ordered ones (connectivity
/// keeps the partial mapping constrained).
std::vector<PatternNodeId> MatchingOrder(const Pattern& q, const CandidateSets& cand) {
  const size_t nq = q.NumNodes();
  std::vector<char> placed(nq, 0);
  std::vector<PatternNodeId> order;
  order.reserve(nq);
  auto selectivity = [&](PatternNodeId u) { return cand.list[u].size(); };
  while (order.size() < nq) {
    PatternNodeId best = kInvalidNode;
    bool best_adjacent = false;
    for (PatternNodeId u = 0; u < nq; ++u) {
      if (placed[u]) continue;
      bool adjacent = false;
      for (uint32_t e : q.OutEdges(u)) adjacent |= placed[q.edges()[e].dst] != 0;
      for (uint32_t e : q.InEdges(u)) adjacent |= placed[q.edges()[e].src] != 0;
      if (best == kInvalidNode || (adjacent && !best_adjacent) ||
          (adjacent == best_adjacent && selectivity(u) < selectivity(best))) {
        best = u;
        best_adjacent = adjacent;
      }
    }
    placed[best] = 1;
    order.push_back(best);
  }
  return order;
}

}  // namespace

IsoResult FindIsomorphicEmbeddings(const Graph& g, const Pattern& q,
                                   const IsoOptions& options) {
  IsoResult res;
  const size_t nq = q.NumNodes();
  CandidateSets cand = ComputeCandidates(g, q);
  for (PatternNodeId u = 0; u < nq; ++u) {
    if (cand.list[u].empty()) return res;  // impossible
  }
  std::vector<PatternNodeId> order = MatchingOrder(q, cand);
  std::vector<NodeId> assignment(nq, kInvalidNode);
  std::vector<char> used(g.NumNodes(), 0);

  // Iterative backtracking over `order` with explicit candidate cursors.
  std::vector<size_t> cursor(nq, 0);
  size_t depth = 0;
  while (true) {
    if (res.steps >= options.max_steps ||
        res.embeddings.size() >= options.max_embeddings) {
      res.truncated = true;
      return res;
    }
    if (depth == nq) {
      res.embeddings.push_back(assignment);
      // Backtrack to continue enumeration.
      --depth;
      NodeId v = assignment[order[depth]];
      used[v] = 0;
      assignment[order[depth]] = kInvalidNode;
      continue;
    }
    PatternNodeId u = order[depth];
    const auto& candidates = cand.list[u];
    bool advanced = false;
    while (cursor[depth] < candidates.size()) {
      NodeId v = candidates[cursor[depth]++];
      ++res.steps;
      if (used[v]) continue;
      // Consistency: every pattern edge between u and an already-assigned
      // node must map to a data edge.
      bool ok = true;
      for (uint32_t e : q.OutEdges(u)) {
        NodeId w = assignment[q.edges()[e].dst];
        if (w != kInvalidNode && !g.HasEdge(v, w)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        for (uint32_t e : q.InEdges(u)) {
          NodeId w = assignment[q.edges()[e].src];
          if (w != kInvalidNode && !g.HasEdge(w, v)) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) continue;
      assignment[u] = v;
      used[v] = 1;
      ++depth;
      if (depth < nq) cursor[depth] = 0;
      advanced = true;
      break;
    }
    if (advanced) continue;
    // Exhausted candidates at this depth: backtrack.
    if (depth == 0) return res;
    cursor[depth] = 0;
    --depth;
    NodeId v = assignment[order[depth]];
    used[v] = 0;
    assignment[order[depth]] = kInvalidNode;
  }
}

MatchRelation IsoMatchRelation(const IsoResult& iso, const Pattern& q,
                               size_t num_nodes) {
  DenseBitset mat(q.NumNodes(), num_nodes);
  for (const auto& emb : iso.embeddings) {
    for (PatternNodeId u = 0; u < emb.size(); ++u) mat.Set(u, emb[u]);
  }
  return MatchRelation::FromBitmaps(mat);
}

}  // namespace expfinder
