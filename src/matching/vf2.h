// Subgraph-isomorphism baseline (VF2-style backtracking).
//
// The paper (§I) contrasts bounded simulation with subgraph isomorphism:
// isomorphism forces a bijection (one data node per pattern node) and
// edge-to-edge mapping, so it misses sensible matches (e.g. SD mapping to
// both Mat and Pat in Example 1) and is NP-complete. This module provides
// that baseline for the semantic comparisons and benchmarks.
//
// Edge bounds are interpreted as 1 (pattern edge -> single data edge); the
// mapping must be injective and edge-preserving (non-induced).

#ifndef EXPFINDER_MATCHING_VF2_H_
#define EXPFINDER_MATCHING_VF2_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/matching/match_relation.h"
#include "src/query/pattern.h"

namespace expfinder {

/// \brief Controls for the isomorphism search.
struct IsoOptions {
  /// Stop after this many embeddings (the count is exponential in general).
  size_t max_embeddings = 1000;
  /// Safety valve on explored search-tree nodes.
  size_t max_steps = 10'000'000;
};

/// \brief Embeddings found by the backtracking search.
struct IsoResult {
  /// Each embedding maps pattern node u -> embedding[u].
  std::vector<std::vector<NodeId>> embeddings;
  /// True when the search stopped at a limit rather than exhausting.
  bool truncated = false;
  /// Search-tree nodes explored (cost proxy used by benchmarks).
  size_t steps = 0;
};

/// Enumerates subgraph-isomorphic embeddings of `q` in `g`.
IsoResult FindIsomorphicEmbeddings(const Graph& g, const Pattern& q,
                                   const IsoOptions& options = {});

/// Projects embeddings to a MatchRelation (union over embeddings; the
/// "match set" view used to compare semantics against simulation).
MatchRelation IsoMatchRelation(const IsoResult& iso, const Pattern& q, size_t num_nodes);

}  // namespace expfinder

#endif  // EXPFINDER_MATCHING_VF2_H_
