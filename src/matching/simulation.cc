#include "src/matching/simulation.h"

#include <deque>

#include "src/matching/match_context.h"
#include "src/util/logging.h"

namespace expfinder {

MatchRelation ComputeSimulation(const Graph& g, const Pattern& q,
                                const MatchOptions& options, MatchContext* ctx) {
  EF_CHECK(q.IsSimulationPattern())
      << "ComputeSimulation requires all bounds == 1; use bounded simulation";
  const size_t n = g.NumNodes();
  const size_t ne = q.NumEdges();

  CandidateSets cand = ComputeCandidates(g, q, options, ctx);
  DenseBitset mat = cand.bitmap;  // in-relation bit matrix
  auto& cnt = ctx->Counters(0, ne, n);

  // Pending invalidated pairs.
  std::deque<std::pair<PatternNodeId, NodeId>> worklist;

  // Seed counters against the initial (candidate) sets.
  for (uint32_t e = 0; e < ne; ++e) {
    const PatternEdge& pe = q.edges()[e];
    const auto dst_mat = mat.Row(pe.dst);
    for (NodeId v : cand.list[pe.src]) {
      int32_t c = 0;
      for (NodeId w : g.OutNeighbors(v)) c += dst_mat[w];
      cnt[e][v] = c;
      if (c == 0) worklist.emplace_back(pe.src, v);
    }
  }

  while (!worklist.empty()) {
    auto [u, v] = worklist.front();
    worklist.pop_front();
    if (!mat.Test(u, v)) continue;
    mat.Reset(u, v);
    // v no longer matches u: decrement support of predecessors along every
    // pattern edge ending in u.
    for (uint32_t e : q.InEdges(u)) {
      const PatternEdge& pe = q.edges()[e];
      auto& counters = cnt[e];
      const auto src_mat = mat.Row(pe.src);
      for (NodeId w : g.InNeighbors(v)) {
        if (--counters[w] == 0 && src_mat[w]) {
          worklist.emplace_back(pe.src, w);
        }
      }
    }
  }
  return MatchRelation::FromBitmaps(mat);
}

MatchRelation ComputeSimulation(const Graph& g, const Pattern& q,
                                const MatchOptions& options) {
  MatchContext ctx;
  return ComputeSimulation(g, q, options, &ctx);
}

MatchRelation ComputeSimulation(const SnapshotPtr& s, const Pattern& q,
                                const MatchOptions& options, MatchContext* ctx) {
  ctx->BindSnapshot(s);
  return ComputeSimulation(s->graph(), q, options, ctx);
}

MatchRelation ComputeSimulationNaive(const Graph& g, const Pattern& q) {
  EF_CHECK(q.IsSimulationPattern());
  const size_t nq = q.NumNodes();
  CandidateSets cand = ComputeCandidates(g, q);
  DenseBitset mat = cand.bitmap;

  bool changed = true;
  while (changed) {
    changed = false;
    for (PatternNodeId u = 0; u < nq; ++u) {
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        if (!mat.Test(u, v)) continue;
        for (uint32_t e : q.OutEdges(u)) {
          const PatternEdge& pe = q.edges()[e];
          bool supported = false;
          for (NodeId w : g.OutNeighbors(v)) {
            if (mat.Test(pe.dst, w)) {
              supported = true;
              break;
            }
          }
          if (!supported) {
            mat.Reset(u, v);
            changed = true;
            break;
          }
        }
      }
    }
  }
  return MatchRelation::FromBitmaps(mat);
}

}  // namespace expfinder
