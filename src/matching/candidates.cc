#include "src/matching/candidates.h"

#include <algorithm>
#include <string>

#include "src/matching/match_context.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace expfinder {

namespace {

struct CompiledNode {
  bool impossible = false;
  bool label_wildcard = false;
  LabelId label = kInvalidLabel;
  // (resolved key, condition) pairs.
  std::vector<std::pair<AttrKeyId, const Condition*>> conds;
  // Any-attribute ("*") conditions, evaluated over every value of a node.
  std::vector<const Condition*> any_conds;
};

CompiledNode Compile(const Graph& g, const PatternNode& n) {
  CompiledNode c;
  if (n.label.empty()) {
    c.label_wildcard = true;
  } else {
    auto lid = g.FindLabel(n.label);
    if (!lid) {
      c.impossible = true;  // label absent from graph: no candidates
      return c;
    }
    c.label = *lid;
  }
  for (const Condition& cond : n.conditions) {
    if (cond.is_any_attr()) {
      // "*" ranges over label + every attribute: it can match nodes even
      // when no attribute key does, so it never proves impossibility.
      c.any_conds.push_back(&cond);
      continue;
    }
    auto key = g.FindAttrKey(cond.attr());
    if (!key) {
      c.impossible = true;  // attribute key never set on any node
      return c;
    }
    c.conds.emplace_back(*key, &cond);
  }
  return c;
}

bool Satisfies(const Graph& g, NodeId v, const CompiledNode& c) {
  if (!c.label_wildcard && g.label(v) != c.label) return false;
  for (const auto& [key, cond] : c.conds) {
    if (!cond->Eval(g.GetAttr(v, key))) return false;
  }
  for (const Condition* cond : c.any_conds) {
    if (!AnyAttrSatisfies(g, v, *cond)) return false;
  }
  return true;
}

/// Tokens every match of `n` must carry in its token set (see the soundness
/// contract in index/topic_index.h): the tokens of string constants under
/// kEq and kHasToken, named-attribute or any-attribute alike. kContains is
/// excluded — substrings cross token boundaries.
void AppendNecessaryTokens(const PatternNode& n, std::vector<std::string>* out) {
  for (const Condition& cond : n.conditions) {
    if (!cond.rhs().is_string()) continue;
    if (cond.op() != CmpOp::kEq && cond.op() != CmpOp::kHasToken) continue;
    AppendTopicTokens(cond.rhs().AsString(), out);
  }
}

/// `Topics` is TopicIndex (const) or MaintainedTopicIndex; nullptr means no
/// index. Every candidate a posting list proposes is re-verified by
/// Satisfies, so the output is bit-identical to the scan paths — ascending
/// order included, since postings are ascending like the label index.
template <typename Topics>
CandidateSets ComputeCandidatesImpl(const Graph& g, const Pattern& q,
                                    const MatchOptions& options, Topics* topics,
                                    TopicSeedStats* stats) {
  const size_t n = g.NumNodes();
  const size_t nq = q.NumNodes();
  CandidateSets out;
  out.bitmap = DenseBitset(nq, n);
  out.list.resize(nq);
  std::vector<std::string> tokens;
  std::vector<NodeId> posting;
  for (PatternNodeId u = 0; u < nq; ++u) {
    CompiledNode c = Compile(g, q.node(u));
    if (c.impossible) continue;
    auto consider = [&](NodeId v) {
      if (Satisfies(g, v, c)) {
        out.bitmap.Set(u, v);
        out.list[u].push_back(v);
      }
    };
    tokens.clear();
    AppendNecessaryTokens(q.node(u), &tokens);
    const size_t scan_cost = (options.use_label_index && !c.label_wildcard)
                                 ? g.NodesWithLabel(c.label).size()
                                 : n;
    bool seeded = false;
    if (!tokens.empty() && topics != nullptr) {
      // A matching node must carry every necessary token, so any single
      // posting list is a sound universe — pick the rarest term.
      bool missing = false;
      uint32_t best_term = 0;
      size_t best_df = SIZE_MAX;
      for (const std::string& t : tokens) {
        auto term = topics->FindTerm(t);
        if (!term) {
          missing = true;  // token on no node: the set is provably empty
          break;
        }
        const size_t df = topics->DocFreq(*term);
        if (df < best_df) {
          best_df = df;
          best_term = *term;
        }
      }
      if (missing) {
        seeded = true;
        if (stats != nullptr) ++stats->posting_hits;
      } else if (best_df < scan_cost) {
        posting.clear();
        topics->AppendPostings(best_term, &posting);
        for (NodeId v : posting) consider(v);
        EF_DCHECK(std::is_sorted(out.list[u].begin(), out.list[u].end()));
        seeded = true;
        if (stats != nullptr) ++stats->posting_hits;
      } else if (stats != nullptr) {
        ++stats->seed_scan_fallbacks;  // the scan is no worse than the posting
      }
    } else if (!tokens.empty() && stats != nullptr) {
      ++stats->seed_scan_fallbacks;  // text predicates but no index available
    }
    if (seeded) continue;
    if (options.use_label_index && !c.label_wildcard) {
      // Graph::AddNode appends each new (dense, increasing) node id to its
      // label's index list, so NodesWithLabel is already ascending and the
      // candidate list inherits that order — no per-query re-sort needed.
      for (NodeId v : g.NodesWithLabel(c.label)) consider(v);
      EF_DCHECK(std::is_sorted(out.list[u].begin(), out.list[u].end()));
    } else {
      for (NodeId v = 0; v < n; ++v) consider(v);
    }
  }
  return out;
}

}  // namespace

CandidateSets ComputeCandidates(const Graph& g, const Pattern& q,
                                const MatchOptions& options) {
  return ComputeCandidatesImpl<const TopicIndex>(g, q, options, nullptr, nullptr);
}

CandidateSets ComputeCandidates(const Graph& g, const Pattern& q,
                                const MatchOptions& options,
                                const TopicIndex* topics, TopicSeedStats* stats) {
  return ComputeCandidatesImpl(g, q, options, topics, stats);
}

CandidateSets ComputeCandidates(const Graph& g, const Pattern& q,
                                const MatchOptions& options,
                                MaintainedTopicIndex* topics, TopicSeedStats* stats) {
  return ComputeCandidatesImpl(g, q, options, topics, stats);
}

CandidateSets ComputeCandidates(const Graph& g, const Pattern& q,
                                const MatchOptions& options, MatchContext* ctx) {
  if (ctx == nullptr || !options.topic_index.enabled || !HasTextPredicates(q)) {
    return ComputeCandidates(g, q, options);
  }
  const TopicIndex* topics = ctx->TopicIndexFor(g, options.topic_index);
  TopicSeedStats stats;
  CandidateSets out = ComputeCandidatesImpl(g, q, options, topics, &stats);
  ctx->AddTopicStats(stats.posting_hits, stats.seed_scan_fallbacks);
  return out;
}

}  // namespace expfinder
