#include "src/matching/candidates.h"

#include <algorithm>

#include "src/util/logging.h"

namespace expfinder {

namespace {

struct CompiledNode {
  bool impossible = false;
  bool label_wildcard = false;
  LabelId label = kInvalidLabel;
  // (resolved key, condition) pairs.
  std::vector<std::pair<AttrKeyId, const Condition*>> conds;
};

CompiledNode Compile(const Graph& g, const PatternNode& n) {
  CompiledNode c;
  if (n.label.empty()) {
    c.label_wildcard = true;
  } else {
    auto lid = g.FindLabel(n.label);
    if (!lid) {
      c.impossible = true;  // label absent from graph: no candidates
      return c;
    }
    c.label = *lid;
  }
  for (const Condition& cond : n.conditions) {
    auto key = g.FindAttrKey(cond.attr());
    if (!key) {
      c.impossible = true;  // attribute key never set on any node
      return c;
    }
    c.conds.emplace_back(*key, &cond);
  }
  return c;
}

bool Satisfies(const Graph& g, NodeId v, const CompiledNode& c) {
  if (!c.label_wildcard && g.label(v) != c.label) return false;
  for (const auto& [key, cond] : c.conds) {
    if (!cond->Eval(g.GetAttr(v, key))) return false;
  }
  return true;
}

}  // namespace

CandidateSets ComputeCandidates(const Graph& g, const Pattern& q,
                                const MatchOptions& options) {
  const size_t n = g.NumNodes();
  const size_t nq = q.NumNodes();
  CandidateSets out;
  out.bitmap = DenseBitset(nq, n);
  out.list.resize(nq);
  for (PatternNodeId u = 0; u < nq; ++u) {
    CompiledNode c = Compile(g, q.node(u));
    if (c.impossible) continue;
    auto consider = [&](NodeId v) {
      if (Satisfies(g, v, c)) {
        out.bitmap.Set(u, v);
        out.list[u].push_back(v);
      }
    };
    if (options.use_label_index && !c.label_wildcard) {
      // Graph::AddNode appends each new (dense, increasing) node id to its
      // label's index list, so NodesWithLabel is already ascending and the
      // candidate list inherits that order — no per-query re-sort needed.
      for (NodeId v : g.NodesWithLabel(c.label)) consider(v);
      EF_DCHECK(std::is_sorted(out.list[u].begin(), out.list[u].end()));
    } else {
      for (NodeId v = 0; v < n; ++v) consider(v);
    }
  }
  return out;
}

}  // namespace expfinder
