#include "src/matching/bounded_simulation.h"

#include "src/graph/bfs.h"
#include "src/graph/csr.h"
#include "src/graph/khop_index.h"
#include "src/graph/shortest_paths.h"
#include "src/matching/match_context.h"
#include "src/util/flat_queue.h"
#include "src/util/logging.h"

namespace expfinder {

MatchRelation ComputeBoundedSimulation(const Graph& g, const Pattern& q,
                                       const MatchOptions& options, MatchContext* ctx) {
  const size_t n = g.NumNodes();
  const size_t ne = q.NumEdges();

  CandidateSets cand = ComputeCandidates(g, q, options, ctx);
  DenseBitset mat = cand.bitmap;
  auto& cnt = ctx->Counters(0, ne, n);

  const Csr& csr = ctx->SnapshotFor(g);
  // One ball index at the pattern's largest finite bound serves every
  // bounded edge: a shallower ball is a prefix of the deeper one. BFS
  // remains the path for unbounded (reachability) edges, depths beyond the
  // index, overflowed hubs, and budget-refused builds — all of which must
  // reproduce the index path bit for bit.
  const KhopIndex* ball =
      ctx->BallIndexFor(g, q.MaxFiniteBound(), options.ball_index, options.num_threads);
  const bool count_fallbacks = options.ball_index.enabled;
  size_t ball_hits = 0;
  size_t bfs_fallbacks = 0;
  FlatQueue<std::pair<PatternNodeId, NodeId>> worklist;

  // Seed: cnt[e=(u,u')][v] = |{w in BallOut(v, bound(e)) : w in mat(u')}|,
  // one flat stratified ball scan per candidate (or one forward bounded BFS
  // on the fallback path, visiting the exact same (w, d) set).
  //
  // This phase is embarrassingly parallel: mat is read-only, cnt[e][v] is
  // written only for the candidate v, and each worker owns a disjoint
  // contiguous slice of cand.list[u]. Per-worker dead lists are appended in
  // worker order afterwards, so the worklist — and therefore the whole
  // fixpoint — is bit-for-bit identical to the serial pass.
  for (PatternNodeId u = 0; u < q.NumNodes(); ++u) {
    const auto& out_edges = q.OutEdges(u);
    if (out_edges.empty()) continue;
    Distance depth = q.MaxOutBound(u);
    const bool indexed = ball != nullptr && depth <= ball->depth();
    const auto& list = cand.list[u];
    // Hoisted per-edge state: bound, target-row view, counter base pointer.
    struct EdgeRef {
      Distance bound;
      DenseBitset::ConstRow dst_mat;
      int32_t* cnt;
    };
    std::vector<EdgeRef> erefs;
    erefs.reserve(out_edges.size());
    for (uint32_t e : out_edges) {
      const PatternEdge& pe = q.edges()[e];
      erefs.push_back({pe.bound, mat.Row(pe.dst), cnt[e].data()});
    }
    auto seed_slice = [&](size_t worker, size_t begin, size_t end,
                          std::vector<NodeId>* dead, size_t* hits, size_t* falls) {
      BfsBuffers& buf = ctx->Buffers(worker);
      for (size_t i = begin; i < end; ++i) {
        NodeId v = list[i];
        if (indexed && ball->HasOut(v)) {
          ++*hits;
          for (Distance d = 1; d <= depth; ++d) {
            for (NodeId w : ball->StratumOut(v, d)) {
              for (const EdgeRef& er : erefs) {
                if (d <= er.bound && er.dst_mat[w]) ++er.cnt[v];
              }
            }
          }
        } else {
          if (count_fallbacks) ++*falls;
          BoundedBfsNonEmpty<true>(csr, v, depth, &buf, [&](NodeId w, Distance d) {
            for (const EdgeRef& er : erefs) {
              if (d <= er.bound && er.dst_mat[w]) ++er.cnt[v];
            }
          });
        }
        for (const EdgeRef& er : erefs) {
          if (er.cnt[v] == 0) {
            dead->push_back(v);
            break;
          }
        }
      }
    };
    const size_t workers = ctx->SeedWorkers(options.num_threads, list.size());
    ctx->EnsureBuffers(workers, n);
    if (workers <= 1) {
      std::vector<NodeId> dead;
      seed_slice(0, 0, list.size(), &dead, &ball_hits, &bfs_fallbacks);
      for (NodeId v : dead) worklist.emplace_back(u, v);
    } else {
      std::vector<std::vector<NodeId>> dead(workers);
      std::vector<size_t> hits(workers, 0), falls(workers, 0);
      ctx->Pool(workers).ParallelChunks(
          list.size(), workers, [&](size_t worker, size_t begin, size_t end) {
            seed_slice(worker, begin, end, &dead[worker], &hits[worker],
                       &falls[worker]);
          });
      for (size_t w = 0; w < workers; ++w) {
        ball_hits += hits[w];
        bfs_fallbacks += falls[w];
        for (NodeId v : dead[w]) worklist.emplace_back(u, v);
      }
    }
  }

  // Refinement stays sequential: the cascade order defines the worklist
  // contents, and determinism is part of the matcher's contract. Each
  // popped dead pair decrements its supporters over the precomputed reverse
  // ball instead of launching a reverse BFS.
  BfsBuffers& buf = ctx->Buffers(0);
  while (!worklist.empty()) {
    auto [u, v] = worklist.front();
    worklist.pop_front();
    if (!mat.Test(u, v)) continue;
    mat.Reset(u, v);
    // Every node that could see v within bound(e) loses one supporter.
    for (uint32_t e : q.InEdges(u)) {
      const PatternEdge& pe = q.edges()[e];
      auto& counters = cnt[e];
      const auto src_mat = mat.Row(pe.src);
      if (ball != nullptr && pe.bound <= ball->depth() && ball->HasIn(v)) {
        ++ball_hits;
        for (NodeId w : ball->BallIn(v, pe.bound)) {
          if (--counters[w] == 0 && src_mat[w]) {
            worklist.emplace_back(pe.src, w);
          }
        }
      } else {
        if (count_fallbacks) ++bfs_fallbacks;
        BoundedBfsNonEmpty<false>(csr, v, pe.bound, &buf, [&](NodeId w, Distance) {
          if (--counters[w] == 0 && src_mat[w]) {
            worklist.emplace_back(pe.src, w);
          }
        });
      }
    }
  }
  ctx->AddBallStats(ball_hits, bfs_fallbacks);
  return MatchRelation::FromBitmaps(mat);
}

MatchRelation ComputeBoundedSimulation(const Graph& g, const Pattern& q,
                                       const MatchOptions& options) {
  MatchContext ctx;
  return ComputeBoundedSimulation(g, q, options, &ctx);
}

MatchRelation ComputeBoundedSimulation(const SnapshotPtr& s, const Pattern& q,
                                       const MatchOptions& options,
                                       MatchContext* ctx) {
  ctx->BindSnapshot(s);
  return ComputeBoundedSimulation(s->graph(), q, options, ctx);
}

MatchRelation ComputeBoundedSimulationNaive(const Graph& g, const Pattern& q) {
  const size_t n = g.NumNodes();
  const size_t nq = q.NumNodes();
  DistanceMatrix dist(g, q.MaxBound() == kUnboundedEdge
                             ? static_cast<Distance>(n)
                             : q.MaxBound());

  CandidateSets cand = ComputeCandidates(g, q);
  DenseBitset mat = cand.bitmap;

  bool changed = true;
  while (changed) {
    changed = false;
    for (PatternNodeId u = 0; u < nq; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (!mat.Test(u, v)) continue;
        for (uint32_t e : q.OutEdges(u)) {
          const PatternEdge& pe = q.edges()[e];
          bool supported = false;
          for (NodeId w = 0; w < n && !supported; ++w) {
            supported = mat.Test(pe.dst, w) && dist.At(v, w) != kUnreachable &&
                        dist.At(v, w) <= pe.bound;
          }
          if (!supported) {
            mat.Reset(u, v);
            changed = true;
            break;
          }
        }
      }
    }
  }
  return MatchRelation::FromBitmaps(mat);
}

}  // namespace expfinder
