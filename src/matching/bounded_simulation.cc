#include "src/matching/bounded_simulation.h"

#include <deque>

#include "src/graph/bfs.h"
#include "src/graph/csr.h"
#include "src/graph/shortest_paths.h"
#include "src/util/logging.h"

namespace expfinder {

MatchRelation ComputeBoundedSimulation(const Graph& g, const Pattern& q,
                                       const MatchOptions& options) {
  const size_t n = g.NumNodes();
  const size_t ne = q.NumEdges();

  CandidateSets cand = ComputeCandidates(g, q, options);
  std::vector<std::vector<char>> mat = cand.bitmap;
  std::vector<std::vector<int32_t>> cnt(ne);
  for (auto& c : cnt) c.assign(n, 0);

  Csr csr(g);
  BfsBuffers buf;
  buf.EnsureSize(n);
  std::deque<std::pair<PatternNodeId, NodeId>> worklist;

  // Seed: one forward bounded BFS per candidate of each pattern node with
  // out-edges, counting current (candidate) members of each target per edge.
  for (PatternNodeId u = 0; u < q.NumNodes(); ++u) {
    const auto& out_edges = q.OutEdges(u);
    if (out_edges.empty()) continue;
    Distance depth = q.MaxOutBound(u);
    for (NodeId v : cand.list[u]) {
      BoundedBfsNonEmpty<true>(csr, v, depth, &buf, [&](NodeId w, Distance d) {
        for (uint32_t e : out_edges) {
          const PatternEdge& pe = q.edges()[e];
          if (d <= pe.bound && mat[pe.dst][w]) ++cnt[e][v];
        }
      });
      for (uint32_t e : out_edges) {
        if (cnt[e][v] == 0) {
          worklist.emplace_back(u, v);
          break;
        }
      }
    }
  }

  while (!worklist.empty()) {
    auto [u, v] = worklist.front();
    worklist.pop_front();
    if (!mat[u][v]) continue;
    mat[u][v] = 0;
    // Every node that could see v within bound(e) loses one supporter.
    for (uint32_t e : q.InEdges(u)) {
      const PatternEdge& pe = q.edges()[e];
      auto& counters = cnt[e];
      const auto& src_mat = mat[pe.src];
      BoundedBfsNonEmpty<false>(csr, v, pe.bound, &buf, [&](NodeId w, Distance) {
        if (--counters[w] == 0 && src_mat[w]) {
          worklist.emplace_back(pe.src, w);
        }
      });
    }
  }
  return MatchRelation::FromBitmaps(mat);
}

MatchRelation ComputeBoundedSimulationNaive(const Graph& g, const Pattern& q) {
  const size_t n = g.NumNodes();
  const size_t nq = q.NumNodes();
  DistanceMatrix dist(g, q.MaxBound() == kUnboundedEdge
                             ? static_cast<Distance>(n)
                             : q.MaxBound());

  CandidateSets cand = ComputeCandidates(g, q);
  std::vector<std::vector<char>> mat = cand.bitmap;

  bool changed = true;
  while (changed) {
    changed = false;
    for (PatternNodeId u = 0; u < nq; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (!mat[u][v]) continue;
        for (uint32_t e : q.OutEdges(u)) {
          const PatternEdge& pe = q.edges()[e];
          bool supported = false;
          for (NodeId w = 0; w < n && !supported; ++w) {
            supported = mat[pe.dst][w] && dist.At(v, w) != kUnreachable &&
                        dist.At(v, w) <= pe.bound;
          }
          if (!supported) {
            mat[u][v] = 0;
            changed = true;
            break;
          }
        }
      }
    }
  }
  return MatchRelation::FromBitmaps(mat);
}

}  // namespace expfinder
