#include "src/matching/bounded_simulation.h"

#include <deque>

#include "src/graph/bfs.h"
#include "src/graph/csr.h"
#include "src/graph/shortest_paths.h"
#include "src/matching/match_context.h"
#include "src/util/logging.h"

namespace expfinder {

MatchRelation ComputeBoundedSimulation(const Graph& g, const Pattern& q,
                                       const MatchOptions& options, MatchContext* ctx) {
  const size_t n = g.NumNodes();
  const size_t ne = q.NumEdges();

  CandidateSets cand = ComputeCandidates(g, q, options);
  DenseBitset mat = cand.bitmap;
  auto& cnt = ctx->Counters(0, ne, n);

  const Csr& csr = ctx->SnapshotFor(g);
  std::deque<std::pair<PatternNodeId, NodeId>> worklist;

  // Seed: one forward bounded BFS per candidate of each pattern node with
  // out-edges, counting current (candidate) members of each target per edge.
  //
  // This phase is embarrassingly parallel: mat is read-only, cnt[e][v] is
  // written only for the BFS source v, and each worker owns a disjoint
  // contiguous slice of cand.list[u]. Per-worker dead lists are appended in
  // worker order afterwards, so the worklist — and therefore the whole
  // fixpoint — is bit-for-bit identical to the serial pass.
  for (PatternNodeId u = 0; u < q.NumNodes(); ++u) {
    const auto& out_edges = q.OutEdges(u);
    if (out_edges.empty()) continue;
    Distance depth = q.MaxOutBound(u);
    const auto& list = cand.list[u];
    auto seed_slice = [&](size_t worker, size_t begin, size_t end,
                          std::vector<NodeId>* dead) {
      BfsBuffers& buf = ctx->Buffers(worker);
      for (size_t i = begin; i < end; ++i) {
        NodeId v = list[i];
        BoundedBfsNonEmpty<true>(csr, v, depth, &buf, [&](NodeId w, Distance d) {
          for (uint32_t e : out_edges) {
            const PatternEdge& pe = q.edges()[e];
            if (d <= pe.bound && mat.Test(pe.dst, w)) ++cnt[e][v];
          }
        });
        for (uint32_t e : out_edges) {
          if (cnt[e][v] == 0) {
            dead->push_back(v);
            break;
          }
        }
      }
    };
    const size_t workers = ctx->SeedWorkers(options.num_threads, list.size());
    ctx->EnsureBuffers(workers, n);
    if (workers <= 1) {
      std::vector<NodeId> dead;
      seed_slice(0, 0, list.size(), &dead);
      for (NodeId v : dead) worklist.emplace_back(u, v);
    } else {
      std::vector<std::vector<NodeId>> dead(workers);
      ctx->Pool(workers).ParallelChunks(
          list.size(), workers, [&](size_t worker, size_t begin, size_t end) {
            seed_slice(worker, begin, end, &dead[worker]);
          });
      for (const auto& part : dead) {
        for (NodeId v : part) worklist.emplace_back(u, v);
      }
    }
  }

  // Refinement stays sequential: the cascade order defines the worklist
  // contents, and determinism is part of the matcher's contract.
  BfsBuffers& buf = ctx->Buffers(0);
  while (!worklist.empty()) {
    auto [u, v] = worklist.front();
    worklist.pop_front();
    if (!mat.Test(u, v)) continue;
    mat.Reset(u, v);
    // Every node that could see v within bound(e) loses one supporter.
    for (uint32_t e : q.InEdges(u)) {
      const PatternEdge& pe = q.edges()[e];
      auto& counters = cnt[e];
      const auto src_mat = mat.Row(pe.src);
      BoundedBfsNonEmpty<false>(csr, v, pe.bound, &buf, [&](NodeId w, Distance) {
        if (--counters[w] == 0 && src_mat[w]) {
          worklist.emplace_back(pe.src, w);
        }
      });
    }
  }
  return MatchRelation::FromBitmaps(mat);
}

MatchRelation ComputeBoundedSimulation(const Graph& g, const Pattern& q,
                                       const MatchOptions& options) {
  MatchContext ctx;
  return ComputeBoundedSimulation(g, q, options, &ctx);
}

MatchRelation ComputeBoundedSimulationNaive(const Graph& g, const Pattern& q) {
  const size_t n = g.NumNodes();
  const size_t nq = q.NumNodes();
  DistanceMatrix dist(g, q.MaxBound() == kUnboundedEdge
                             ? static_cast<Distance>(n)
                             : q.MaxBound());

  CandidateSets cand = ComputeCandidates(g, q);
  DenseBitset mat = cand.bitmap;

  bool changed = true;
  while (changed) {
    changed = false;
    for (PatternNodeId u = 0; u < nq; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (!mat.Test(u, v)) continue;
        for (uint32_t e : q.OutEdges(u)) {
          const PatternEdge& pe = q.edges()[e];
          bool supported = false;
          for (NodeId w = 0; w < n && !supported; ++w) {
            supported = mat.Test(pe.dst, w) && dist.At(v, w) != kUnreachable &&
                        dist.At(v, w) <= pe.bound;
          }
          if (!supported) {
            mat.Reset(u, v);
            changed = true;
            break;
          }
        }
      }
    }
  }
  return MatchRelation::FromBitmaps(mat);
}

}  // namespace expfinder
