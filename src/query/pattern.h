// Pattern queries for (bounded) simulation matching (paper Fig. 1(a)).
//
// A Pattern is a small directed graph: nodes carry a label requirement plus
// search conditions; edges carry an upper bound on the length of the data
// path they may map to (1 = classic graph simulation edge; kUnboundedEdge =
// plain reachability). One node is designated the *output node* — the
// experts the user wants returned (SA* in the paper).

#ifndef EXPFINDER_QUERY_PATTERN_H_
#define EXPFINDER_QUERY_PATTERN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/types.h"
#include "src/query/condition.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace expfinder {

/// Edge bound meaning "any nonempty path" (reachability semantics).
inline constexpr Distance kUnboundedEdge = kUnreachable;

/// Index of a node within a Pattern.
using PatternNodeId = uint32_t;

/// \brief One query node: variable name (for the text format), label
/// requirement (empty = wildcard), and a conjunction of search conditions.
struct PatternNode {
  std::string name;
  std::string label;
  std::vector<Condition> conditions;

  /// True iff data node `v` of `g` satisfies label + all conditions.
  bool Matches(const Graph& g, NodeId v) const;
};

/// \brief One query edge with its path-length bound (>= 1).
struct PatternEdge {
  PatternNodeId src = 0;
  PatternNodeId dst = 0;
  Distance bound = 1;
};

/// \brief A bounded-simulation pattern query.
class Pattern {
 public:
  /// Adds a node; `name` must be unique and nonempty.
  Result<PatternNodeId> AddNode(PatternNode node);

  /// Adds an edge; endpoints must exist, bound >= 1, duplicate (src,dst)
  /// pairs are rejected.
  Status AddEdge(PatternNodeId src, PatternNodeId dst, Distance bound = 1);

  /// Marks the output node (must exist).
  Status SetOutput(PatternNodeId u);

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return edges_.size(); }
  const PatternNode& node(PatternNodeId u) const { return nodes_[u]; }
  /// Mutable access for builders (conditions may be appended after AddNode).
  PatternNode* mutable_node(PatternNodeId u) { return &nodes_[u]; }
  const std::vector<PatternNode>& nodes() const { return nodes_; }
  const std::vector<PatternEdge>& edges() const { return edges_; }

  /// Indices into edges() of u's outgoing / incoming pattern edges.
  const std::vector<uint32_t>& OutEdges(PatternNodeId u) const { return out_[u]; }
  const std::vector<uint32_t>& InEdges(PatternNodeId u) const { return in_[u]; }

  /// The designated output node, if set.
  std::optional<PatternNodeId> output_node() const { return output_; }

  /// Index of the node with the given variable name.
  std::optional<PatternNodeId> FindNode(std::string_view name) const;

  /// Largest bound over u's out-edges (BFS depth needed from u's matches);
  /// 0 when u has none.
  Distance MaxOutBound(PatternNodeId u) const;

  /// Largest bound over all edges; 0 for edge-less patterns.
  Distance MaxBound() const;

  /// Largest *finite* bound over all edges (kUnboundedEdge reachability
  /// edges are skipped); 0 when every edge is unbounded or there are none.
  /// This is the depth the ball index needs to serve every bounded edge.
  Distance MaxFiniteBound() const;

  /// True when every edge bound is exactly 1 (plain graph simulation).
  bool IsSimulationPattern() const;

  /// Structural sanity: >= 1 node, output set. (Add/Set already enforce the
  /// rest.)
  Status Validate() const;

  /// Canonical text rendering (identical to the pattern file format).
  std::string ToText() const;

  /// Hash of ToText(); the exact-rendering identity (round-trip tests rely
  /// on parse(ToText()) preserving it).
  uint64_t Fingerprint() const;

  /// Hash of a *canonicalized* rendering: per-node conditions are sorted
  /// (and exact duplicates dropped) before hashing — sound because a node's
  /// conditions are a conjunction, so order and repetition never change
  /// which data nodes match. This is the cache identity (QueryCacheKey):
  /// a pattern compiled from free-text topic_terms (which appends sorted
  /// `has_token` conditions) shares cache lines with an equivalent explicit
  /// pattern whose author wrote the same conditions in any order. Node
  /// order, names, and edge order still distinguish patterns — only
  /// condition order within a node is canonicalized.
  uint64_t CanonicalFingerprint() const;

 private:
  std::vector<PatternNode> nodes_;
  std::vector<PatternEdge> edges_;
  std::vector<std::vector<uint32_t>> out_, in_;
  std::optional<PatternNodeId> output_;
};

/// \brief Fluent construction helper.
///
///   PatternBuilder b;
///   auto sa = b.Node("SA").Where("experience", CmpOp::kGe, 5).Output();
///   auto sd = b.Node("SD").Where("experience", CmpOp::kGe, 2);
///   b.Edge(sa, sd, 2);
///   Pattern q = b.Build().value();
class PatternBuilder {
 public:
  class NodeRef {
   public:
    NodeRef& Where(std::string attr, CmpOp op, AttrValue rhs);
    NodeRef& Output();
    PatternNodeId index() const { return index_; }

   private:
    friend class PatternBuilder;
    NodeRef(PatternBuilder* b, PatternNodeId i) : builder_(b), index_(i) {}
    PatternBuilder* builder_;
    PatternNodeId index_;
  };

  /// Adds a node with the given label (empty = wildcard). `name` defaults to
  /// "n<i>".
  NodeRef Node(std::string_view label, std::string_view name = "");

  /// Adds an edge with the given bound (kUnboundedEdge for reachability).
  PatternBuilder& Edge(const NodeRef& src, const NodeRef& dst, Distance bound = 1);

  /// Validates and returns the pattern; reports the first accumulated error.
  Result<Pattern> Build();

 private:
  Pattern pattern_;
  Status first_error_;
};

}  // namespace expfinder

#endif  // EXPFINDER_QUERY_PATTERN_H_
