#include "src/query/pattern.h"

#include <algorithm>
#include <sstream>

#include "src/util/string_util.h"

namespace expfinder {

bool PatternNode::Matches(const Graph& g, NodeId v) const {
  if (!label.empty() && g.NodeLabelName(v) != label) return false;
  for (const Condition& c : conditions) {
    if (c.is_any_attr()) {
      if (!AnyAttrSatisfies(g, v, c)) return false;
    } else if (!c.Eval(g.GetAttr(v, c.attr()))) {
      return false;
    }
  }
  return true;
}

Result<PatternNodeId> Pattern::AddNode(PatternNode node) {
  if (node.name.empty()) {
    return Status::InvalidArgument("pattern node needs a nonempty name");
  }
  if (FindNode(node.name)) {
    return Status::AlreadyExists("duplicate pattern node name '" + node.name + "'");
  }
  PatternNodeId id = static_cast<PatternNodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

Status Pattern::AddEdge(PatternNodeId src, PatternNodeId dst, Distance bound) {
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    return Status::InvalidArgument("pattern edge endpoint out of range");
  }
  if (bound < 1) return Status::InvalidArgument("pattern edge bound must be >= 1");
  for (uint32_t e : out_[src]) {
    if (edges_[e].dst == dst) {
      return Status::AlreadyExists("duplicate pattern edge");
    }
  }
  uint32_t idx = static_cast<uint32_t>(edges_.size());
  edges_.push_back({src, dst, bound});
  out_[src].push_back(idx);
  in_[dst].push_back(idx);
  return Status::OK();
}

Status Pattern::SetOutput(PatternNodeId u) {
  if (u >= nodes_.size()) return Status::InvalidArgument("output node out of range");
  output_ = u;
  return Status::OK();
}

std::optional<PatternNodeId> Pattern::FindNode(std::string_view name) const {
  for (PatternNodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return i;
  }
  return std::nullopt;
}

Distance Pattern::MaxOutBound(PatternNodeId u) const {
  Distance best = 0;
  for (uint32_t e : out_[u]) best = std::max(best, edges_[e].bound);
  return best;
}

Distance Pattern::MaxBound() const {
  Distance best = 0;
  for (const auto& e : edges_) best = std::max(best, e.bound);
  return best;
}

Distance Pattern::MaxFiniteBound() const {
  Distance best = 0;
  for (const auto& e : edges_) {
    if (e.bound != kUnboundedEdge) best = std::max(best, e.bound);
  }
  return best;
}

bool Pattern::IsSimulationPattern() const {
  return std::all_of(edges_.begin(), edges_.end(),
                     [](const PatternEdge& e) { return e.bound == 1; });
}

Status Pattern::Validate() const {
  if (nodes_.empty()) return Status::InvalidArgument("pattern has no nodes");
  if (!output_) return Status::InvalidArgument("pattern output node not set");
  return Status::OK();
}

std::string Pattern::ToText() const {
  std::ostringstream os;
  os << "# expfinder pattern v1\n";
  for (const PatternNode& n : nodes_) {
    os << "node " << n.name << " ";
    os << (n.label.empty() ? "*" : "\"" + EscapeQuoted(n.label) + "\"");
    for (const Condition& c : n.conditions) {
      os << " " << c.attr() << " " << CmpOpToken(c.op()) << " " << c.rhs().Serialize();
    }
    os << "\n";
  }
  for (const PatternEdge& e : edges_) {
    os << "edge " << nodes_[e.src].name << " " << nodes_[e.dst].name << " ";
    if (e.bound == kUnboundedEdge) {
      os << "*";
    } else {
      os << e.bound;
    }
    os << "\n";
  }
  if (output_) os << "output " << nodes_[*output_].name << "\n";
  return os.str();
}

uint64_t Pattern::Fingerprint() const { return Fnv1a(ToText()); }

uint64_t Pattern::CanonicalFingerprint() const {
  std::ostringstream os;
  os << "# expfinder pattern v1 canonical\n";
  for (const PatternNode& n : nodes_) {
    os << "node " << n.name << " ";
    os << (n.label.empty() ? "*" : "\"" + EscapeQuoted(n.label) + "\"");
    // A node's conditions are one conjunction: order and duplicates never
    // change its matches, so neither may they change the cache identity.
    std::vector<std::string> rendered;
    rendered.reserve(n.conditions.size());
    for (const Condition& c : n.conditions) {
      std::ostringstream cs;
      cs << c.attr() << " " << CmpOpToken(c.op()) << " " << c.rhs().Serialize();
      rendered.push_back(cs.str());
    }
    std::sort(rendered.begin(), rendered.end());
    rendered.erase(std::unique(rendered.begin(), rendered.end()),
                   rendered.end());
    for (const std::string& r : rendered) os << " " << r;
    os << "\n";
  }
  for (const PatternEdge& e : edges_) {
    os << "edge " << nodes_[e.src].name << " " << nodes_[e.dst].name << " ";
    if (e.bound == kUnboundedEdge) {
      os << "*";
    } else {
      os << e.bound;
    }
    os << "\n";
  }
  if (output_) os << "output " << nodes_[*output_].name << "\n";
  return Fnv1a(os.str());
}

PatternBuilder::NodeRef& PatternBuilder::NodeRef::Where(std::string attr, CmpOp op,
                                                        AttrValue rhs) {
  builder_->pattern_.mutable_node(index_)->conditions.emplace_back(std::move(attr), op,
                                                                   std::move(rhs));
  return *this;
}

PatternBuilder::NodeRef& PatternBuilder::NodeRef::Output() {
  Status st = builder_->pattern_.SetOutput(index_);
  if (!st.ok() && builder_->first_error_.ok()) builder_->first_error_ = st;
  return *this;
}

PatternBuilder::NodeRef PatternBuilder::Node(std::string_view label,
                                             std::string_view name) {
  PatternNode n;
  n.label = std::string(label);
  n.name = name.empty() ? "n" + std::to_string(pattern_.NumNodes()) : std::string(name);
  auto res = pattern_.AddNode(std::move(n));
  if (!res.ok()) {
    if (first_error_.ok()) first_error_ = res.status();
    return NodeRef(this, 0);
  }
  return NodeRef(this, res.value());
}

PatternBuilder& PatternBuilder::Edge(const NodeRef& src, const NodeRef& dst,
                                     Distance bound) {
  Status st = pattern_.AddEdge(src.index(), dst.index(), bound);
  if (!st.ok() && first_error_.ok()) first_error_ = st;
  return *this;
}

Result<Pattern> PatternBuilder::Build() {
  if (!first_error_.ok()) return first_error_;
  EF_RETURN_NOT_OK(pattern_.Validate());
  return pattern_;
}

}  // namespace expfinder
