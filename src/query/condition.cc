#include "src/query/condition.h"

namespace expfinder {

std::string_view CmpOpToken(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
    case CmpOp::kContains: return "contains";
  }
  return "?";
}

std::optional<CmpOp> ParseCmpOp(std::string_view token) {
  if (token == "==") return CmpOp::kEq;
  if (token == "!=") return CmpOp::kNe;
  if (token == "<") return CmpOp::kLt;
  if (token == "<=") return CmpOp::kLe;
  if (token == ">") return CmpOp::kGt;
  if (token == ">=") return CmpOp::kGe;
  if (token == "contains") return CmpOp::kContains;
  return std::nullopt;
}

bool Condition::Eval(const AttrValue* lhs) const {
  if (lhs == nullptr) return false;
  switch (op_) {
    case CmpOp::kEq:
      return lhs->Equals(rhs_);
    case CmpOp::kNe:
      return !lhs->Equals(rhs_);
    case CmpOp::kLt:
    case CmpOp::kLe:
    case CmpOp::kGt:
    case CmpOp::kGe: {
      auto c = lhs->Compare(rhs_);
      if (!c) return false;
      switch (op_) {
        case CmpOp::kLt: return *c < 0;
        case CmpOp::kLe: return *c <= 0;
        case CmpOp::kGt: return *c > 0;
        default: return *c >= 0;
      }
    }
    case CmpOp::kContains:
      if (!lhs->is_string() || !rhs_.is_string()) return false;
      return lhs->AsString().find(rhs_.AsString()) != std::string::npos;
  }
  return false;
}

std::string Condition::ToString() const {
  std::string out = attr_;
  out += " ";
  out += CmpOpToken(op_);
  out += " ";
  out += rhs_.Serialize();
  return out;
}

}  // namespace expfinder
