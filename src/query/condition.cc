#include "src/query/condition.h"

#include <algorithm>

#include "src/graph/graph.h"
#include "src/util/string_util.h"

namespace expfinder {

std::string_view CmpOpToken(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
    case CmpOp::kContains: return "contains";
    case CmpOp::kHasToken: return "has_token";
  }
  return "?";
}

std::optional<CmpOp> ParseCmpOp(std::string_view token) {
  if (token == "==") return CmpOp::kEq;
  if (token == "!=") return CmpOp::kNe;
  if (token == "<") return CmpOp::kLt;
  if (token == "<=") return CmpOp::kLe;
  if (token == ">") return CmpOp::kGt;
  if (token == ">=") return CmpOp::kGe;
  if (token == "contains") return CmpOp::kContains;
  if (token == "has_token") return CmpOp::kHasToken;
  return std::nullopt;
}

bool Condition::Eval(const AttrValue* lhs) const {
  if (lhs == nullptr) return false;
  switch (op_) {
    case CmpOp::kEq:
      return lhs->Equals(rhs_);
    case CmpOp::kNe:
      return !lhs->Equals(rhs_);
    case CmpOp::kLt:
    case CmpOp::kLe:
    case CmpOp::kGt:
    case CmpOp::kGe: {
      auto c = lhs->Compare(rhs_);
      if (!c) return false;
      switch (op_) {
        case CmpOp::kLt: return *c < 0;
        case CmpOp::kLe: return *c <= 0;
        case CmpOp::kGt: return *c > 0;
        default: return *c >= 0;
      }
    }
    case CmpOp::kContains:
      if (!lhs->is_string() || !rhs_.is_string()) return false;
      return lhs->AsString().find(rhs_.AsString()) != std::string::npos;
    case CmpOp::kHasToken: {
      if (!lhs->is_string() || !rhs_.is_string()) return false;
      const std::vector<std::string> need = TopicTokens(rhs_.AsString());
      if (need.empty()) return false;  // a tokenless constant matches nothing
      const std::vector<std::string> have = TopicTokens(lhs->AsString());
      for (const std::string& t : need) {
        if (std::find(have.begin(), have.end(), t) == have.end()) return false;
      }
      return true;
    }
  }
  return false;
}

bool AnyAttrSatisfies(const Graph& g, NodeId v, const Condition& c) {
  const AttrValue label(g.NodeLabelName(v));
  if (c.Eval(&label)) return true;
  for (const auto& [key, value] : g.Attrs(v)) {
    if (c.Eval(&value)) return true;
  }
  return false;
}

std::string Condition::ToString() const {
  std::string out = attr_;
  out += " ";
  out += CmpOpToken(op_);
  out += " ";
  out += rhs_.Serialize();
  return out;
}

}  // namespace expfinder
