#include "src/query/condition.h"

#include <algorithm>
#include <cctype>
#include <cstdint>

#include "src/graph/graph.h"
#include "src/util/string_util.h"

namespace expfinder {

namespace {

/// Three-way comparison of the lowercased alnum run `run` against an
/// already-normalized token. Runs are raw slices of the node value, so the
/// lowercasing the tokenizer would apply happens inline here.
int CompareLoweredRun(std::string_view run, const std::string& token) {
  const size_t n = std::min(run.size(), token.size());
  for (size_t i = 0; i < n; ++i) {
    const char c =
        static_cast<char>(std::tolower(static_cast<unsigned char>(run[i])));
    if (c != token[i]) return c < token[i] ? -1 : 1;
  }
  if (run.size() == token.size()) return 0;
  return run.size() < token.size() ? -1 : 1;
}

/// True when every token of `need` (sorted, unique, normalized) occurs among
/// the topic tokens of `s`. Streams the maximal alnum runs of `s` without
/// materializing them, tracking matches in a bitmask; conditions with more
/// than 64 tokens (never produced by the topic layer) take the tokenizing
/// path.
bool HasAllTopicTokens(std::string_view s, const std::vector<std::string>& need) {
  if (need.size() > 64) {
    const std::vector<std::string> have = TopicTokens(s);
    for (const std::string& t : need) {
      if (std::find(have.begin(), have.end(), t) == have.end()) return false;
    }
    return true;
  }
  const uint64_t all =
      need.size() == 64 ? ~uint64_t{0} : (uint64_t{1} << need.size()) - 1;
  uint64_t matched = 0;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && !std::isalnum(static_cast<unsigned char>(s[i]))) ++i;
    size_t j = i;
    while (j < s.size() && std::isalnum(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) {
      const std::string_view run = s.substr(i, j - i);
      // Tokens are lowercase ASCII alnum, so byte order (how `need` was
      // sorted) agrees with CompareLoweredRun and binary search applies.
      size_t lo = 0, hi = need.size();
      while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        if (CompareLoweredRun(run, need[mid]) > 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo < need.size() && CompareLoweredRun(run, need[lo]) == 0) {
        matched |= uint64_t{1} << lo;
        if (matched == all) return true;
      }
    }
    i = j;
  }
  return matched == all;
}

}  // namespace

Condition::Condition(std::string attr, CmpOp op, AttrValue rhs)
    : attr_(std::move(attr)), op_(op), rhs_(std::move(rhs)) {
  if (op_ == CmpOp::kHasToken && rhs_.is_string()) {
    rhs_tokens_ = TopicTokens(rhs_.AsString());
    std::sort(rhs_tokens_.begin(), rhs_tokens_.end());
    rhs_tokens_.erase(std::unique(rhs_tokens_.begin(), rhs_tokens_.end()),
                      rhs_tokens_.end());
  }
}

std::string_view CmpOpToken(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
    case CmpOp::kContains: return "contains";
    case CmpOp::kHasToken: return "has_token";
  }
  return "?";
}

std::optional<CmpOp> ParseCmpOp(std::string_view token) {
  if (token == "==") return CmpOp::kEq;
  if (token == "!=") return CmpOp::kNe;
  if (token == "<") return CmpOp::kLt;
  if (token == "<=") return CmpOp::kLe;
  if (token == ">") return CmpOp::kGt;
  if (token == ">=") return CmpOp::kGe;
  if (token == "contains") return CmpOp::kContains;
  if (token == "has_token") return CmpOp::kHasToken;
  return std::nullopt;
}

bool Condition::Eval(const AttrValue* lhs) const {
  if (lhs == nullptr) return false;
  switch (op_) {
    case CmpOp::kEq:
      return lhs->Equals(rhs_);
    case CmpOp::kNe:
      return !lhs->Equals(rhs_);
    case CmpOp::kLt:
    case CmpOp::kLe:
    case CmpOp::kGt:
    case CmpOp::kGe: {
      auto c = lhs->Compare(rhs_);
      if (!c) return false;
      switch (op_) {
        case CmpOp::kLt: return *c < 0;
        case CmpOp::kLe: return *c <= 0;
        case CmpOp::kGt: return *c > 0;
        default: return *c >= 0;
      }
    }
    case CmpOp::kContains:
      if (!lhs->is_string() || !rhs_.is_string()) return false;
      return lhs->AsString().find(rhs_.AsString()) != std::string::npos;
    case CmpOp::kHasToken: {
      if (!lhs->is_string()) return false;
      // Non-string or tokenless constants match nothing (rhs_tokens_ is only
      // populated for string constants with >= 1 token).
      if (rhs_tokens_.empty()) return false;
      return HasAllTopicTokens(lhs->AsString(), rhs_tokens_);
    }
  }
  return false;
}

bool AnyAttrSatisfies(const Graph& g, NodeId v, const Condition& c) {
  const AttrValue label(g.NodeLabelName(v));
  if (c.Eval(&label)) return true;
  for (const auto& [key, value] : g.Attrs(v)) {
    if (c.Eval(&value)) return true;
  }
  return false;
}

std::string Condition::ToString() const {
  std::string out = attr_;
  out += " ";
  out += CmpOpToken(op_);
  out += " ";
  out += rhs_.Serialize();
  return out;
}

}  // namespace expfinder
