#include "src/query/pattern_parser.h"

#include <fstream>
#include <sstream>

#include "src/graph/graph_io.h"
#include "src/util/string_util.h"

namespace expfinder {

namespace {
Status ParseError(size_t line_no, const std::string& what) {
  return Status::Corruption("pattern parse error at line " + std::to_string(line_no) +
                            ": " + what);
}
}  // namespace

Result<Pattern> LoadPatternStream(std::istream& is) {
  Pattern p;
  std::string line;
  size_t line_no = 0;
  // Edges/output may reference nodes declared later; collect and resolve at
  // the end.
  struct PendingEdge {
    std::string src, dst;
    Distance bound;
    size_t line_no;
  };
  std::vector<PendingEdge> pending_edges;
  std::string output_name;
  size_t output_line = 0;

  while (std::getline(is, line)) {
    ++line_no;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    auto tokens = TokenizeRespectingQuotes(sv);
    if (tokens.empty()) continue;
    const std::string& kind = tokens[0];
    if (kind == "node") {
      if (tokens.size() < 3) return ParseError(line_no, "node needs name and label");
      PatternNode n;
      n.name = tokens[1];
      if (tokens[2] == "*") {
        n.label.clear();
      } else {
        auto label = ParseAttrValue(tokens[2]);
        n.label = (label && label->is_string()) ? label->AsString() : tokens[2];
      }
      if ((tokens.size() - 3) % 3 != 0) {
        return ParseError(line_no, "conditions must come in (attr op value) triples");
      }
      for (size_t i = 3; i + 2 < tokens.size(); i += 3) {
        auto op = ParseCmpOp(tokens[i + 1]);
        if (!op) return ParseError(line_no, "unknown operator '" + tokens[i + 1] + "'");
        auto value = ParseAttrValue(tokens[i + 2]);
        if (!value) return ParseError(line_no, "bad value '" + tokens[i + 2] + "'");
        n.conditions.emplace_back(tokens[i], *op, *value);
      }
      auto res = p.AddNode(std::move(n));
      if (!res.ok()) return ParseError(line_no, res.status().message());
    } else if (kind == "edge") {
      if (tokens.size() < 3 || tokens.size() > 4) {
        return ParseError(line_no, "edge needs two node names and optional bound");
      }
      Distance bound = 1;
      if (tokens.size() == 4) {
        if (tokens[3] == "*") {
          bound = kUnboundedEdge;
        } else {
          int64_t b;
          if (!ParseInt64(tokens[3], &b) || b < 1) {
            return ParseError(line_no, "bad bound '" + tokens[3] + "'");
          }
          bound = static_cast<Distance>(b);
        }
      }
      pending_edges.push_back({tokens[1], tokens[2], bound, line_no});
    } else if (kind == "output") {
      if (tokens.size() != 2) return ParseError(line_no, "output needs one node name");
      output_name = tokens[1];
      output_line = line_no;
    } else {
      return ParseError(line_no, "unknown directive '" + kind + "'");
    }
  }

  for (const auto& e : pending_edges) {
    auto src = p.FindNode(e.src);
    if (!src) return ParseError(e.line_no, "unknown node '" + e.src + "'");
    auto dst = p.FindNode(e.dst);
    if (!dst) return ParseError(e.line_no, "unknown node '" + e.dst + "'");
    Status st = p.AddEdge(*src, *dst, e.bound);
    if (!st.ok()) return ParseError(e.line_no, st.message());
  }
  if (!output_name.empty()) {
    auto out = p.FindNode(output_name);
    if (!out) return ParseError(output_line, "unknown output node '" + output_name + "'");
    EF_RETURN_NOT_OK(p.SetOutput(*out));
  }
  EF_RETURN_NOT_OK(p.Validate());
  return p;
}

Result<Pattern> ParsePatternText(std::string_view text) {
  std::istringstream is{std::string(text)};
  return LoadPatternStream(is);
}

Result<Pattern> LoadPatternFile(const std::string& path) {
  std::ifstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open for reading: " + path);
  return LoadPatternStream(f);
}

Status SavePatternFile(const Pattern& p, const std::string& path) {
  std::ofstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open for writing: " + path);
  f << p.ToText();
  if (!f.good()) return Status::IOError("stream write failed");
  return Status::OK();
}

}  // namespace expfinder
