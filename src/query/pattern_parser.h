// Text format for pattern queries — the file-based counterpart of the GUI's
// Pattern Builder panel (paper Fig. 4). Grammar (line-based):
//
//   # expfinder pattern v1
//   node <name> <"label"|*> [<attr> <op> <value>]...
//   edge <srcName> <dstName> [<bound>|*]        (default bound 1)
//   output <name>
//
// Ops: == != < <= > >= contains. Values follow the AttrValue grammar.
// Pattern::ToText() emits exactly this format (round-trip safe).

#ifndef EXPFINDER_QUERY_PATTERN_PARSER_H_
#define EXPFINDER_QUERY_PATTERN_PARSER_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "src/query/pattern.h"
#include "src/util/result.h"

namespace expfinder {

/// Parses a pattern from text; fails with Corruption + line number on
/// malformed input, InvalidArgument when structurally invalid (e.g. no
/// output node).
Result<Pattern> ParsePatternText(std::string_view text);

/// Stream/file variants.
Result<Pattern> LoadPatternStream(std::istream& is);
Result<Pattern> LoadPatternFile(const std::string& path);
Status SavePatternFile(const Pattern& p, const std::string& path);

}  // namespace expfinder

#endif  // EXPFINDER_QUERY_PATTERN_PARSER_H_
