// Search conditions on pattern nodes (paper §I: "the SA should have at
// least 5 years of working experience, shown as a search condition at node
// SA"). A condition compares one node attribute against a constant.

#ifndef EXPFINDER_QUERY_CONDITION_H_
#define EXPFINDER_QUERY_CONDITION_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/graph/attribute.h"
#include "src/graph/types.h"

namespace expfinder {

class Graph;

/// Comparison operator of a search condition. kContains is a case-sensitive
/// substring test; kHasToken is the topic layer's case-insensitive token
/// match — every topic token of the constant (see TopicTokens) must appear
/// among the tokens of the node's string value. A constant with no tokens
/// matches nothing.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe, kContains, kHasToken };

/// Token used by the text formats ("==", "!=", "<", "<=", ">", ">=",
/// "contains", "has_token").
std::string_view CmpOpToken(CmpOp op);

/// Parses an operator token; nullopt when unknown.
std::optional<CmpOp> ParseCmpOp(std::string_view token);

/// \brief One predicate `attr OP constant` evaluated against a data node's
/// attribute. Missing or type-incomparable attributes fail the condition
/// (never error): a node without "experience" cannot match
/// "experience >= 5".
class Condition {
 public:
  Condition(std::string attr, CmpOp op, AttrValue rhs);

  const std::string& attr() const { return attr_; }
  CmpOp op() const { return op_; }
  const AttrValue& rhs() const { return rhs_; }

  /// Evaluates against the node's attribute value (nullptr = attribute
  /// absent -> false; for kNe absence is also false, keeping Eval monotone
  /// in information).
  bool Eval(const AttrValue* lhs) const;

  /// True for the reserved attribute name "*": the condition is satisfied
  /// when ANY of the node's values — its label name or any attribute value —
  /// satisfies it (see AnyAttrSatisfies). The topic layer compiles free-text
  /// expertise terms into `* has_token "term"` predicates, so a term matches
  /// wherever it appears (specialty, name, label, ...). "*" is reserved: a
  /// graph attribute literally named "*" cannot be addressed by conditions.
  bool is_any_attr() const { return attr_ == "*"; }

  /// Round-trippable rendering: `attr OP value`.
  std::string ToString() const;

  bool operator==(const Condition& other) const {
    return attr_ == other.attr_ && op_ == other.op_ && rhs_ == other.rhs_;
  }

 private:
  std::string attr_;
  CmpOp op_;
  AttrValue rhs_;
  // kHasToken only: TopicTokens(rhs), sorted and deduplicated, computed once
  // at construction — candidate re-verification evaluates the condition per
  // posting-list candidate and must not re-tokenize the invariant constant.
  std::vector<std::string> rhs_tokens_;
};

/// Evaluates an any-attribute condition (attr "*") against node `v`: true
/// when the label name or any attribute value of `v` satisfies `c`. The
/// label participates as a string value, so `* == "SA"` matches label SA
/// and `* has_token "x"` sees label tokens too — which keeps the topic
/// index (which tokenizes labels and string attributes alike) a sound
/// pre-filter for these conditions.
bool AnyAttrSatisfies(const Graph& g, NodeId v, const Condition& c);

}  // namespace expfinder

#endif  // EXPFINDER_QUERY_CONDITION_H_
