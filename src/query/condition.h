// Search conditions on pattern nodes (paper §I: "the SA should have at
// least 5 years of working experience, shown as a search condition at node
// SA"). A condition compares one node attribute against a constant.

#ifndef EXPFINDER_QUERY_CONDITION_H_
#define EXPFINDER_QUERY_CONDITION_H_

#include <optional>
#include <string>
#include <string_view>

#include "src/graph/attribute.h"

namespace expfinder {

/// Comparison operator of a search condition.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe, kContains };

/// Token used by the text formats ("==", "!=", "<", "<=", ">", ">=",
/// "contains").
std::string_view CmpOpToken(CmpOp op);

/// Parses an operator token; nullopt when unknown.
std::optional<CmpOp> ParseCmpOp(std::string_view token);

/// \brief One predicate `attr OP constant` evaluated against a data node's
/// attribute. Missing or type-incomparable attributes fail the condition
/// (never error): a node without "experience" cannot match
/// "experience >= 5".
class Condition {
 public:
  Condition(std::string attr, CmpOp op, AttrValue rhs)
      : attr_(std::move(attr)), op_(op), rhs_(std::move(rhs)) {}

  const std::string& attr() const { return attr_; }
  CmpOp op() const { return op_; }
  const AttrValue& rhs() const { return rhs_; }

  /// Evaluates against the node's attribute value (nullptr = attribute
  /// absent -> false; for kNe absence is also false, keeping Eval monotone
  /// in information).
  bool Eval(const AttrValue* lhs) const;

  /// Round-trippable rendering: `attr OP value`.
  std::string ToString() const;

  bool operator==(const Condition& other) const {
    return attr_ == other.attr_ && op_ == other.op_ && rhs_ == other.rhs_;
  }

 private:
  std::string attr_;
  CmpOp op_;
  AttrValue rhs_;
};

}  // namespace expfinder

#endif  // EXPFINDER_QUERY_CONDITION_H_
