// Query planning (paper §III: "(bounded) simulation queries are processed
// on large graphs by generating optimized query plans"). The planner
// estimates per-pattern-node candidate counts from the graph's label index
// and condition selectivities, decides whether the label index should drive
// candidate initialization, and flags queries that cannot match at all
// (empty candidate estimate) so the engine can skip the fixpoint.

#ifndef EXPFINDER_ENGINE_PLANNER_H_
#define EXPFINDER_ENGINE_PLANNER_H_

#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/matching/candidates.h"
#include "src/query/pattern.h"

namespace expfinder {

/// \brief The evaluation plan for one query.
struct EvalPlan {
  MatchOptions match_options;
  /// Pattern nodes ordered by estimated selectivity (most selective first).
  std::vector<PatternNodeId> node_order;
  /// Estimated candidate count per pattern node.
  std::vector<size_t> estimated_candidates;
  /// True when some pattern node provably has zero candidates (unknown
  /// label): the fixpoint can be skipped entirely.
  bool provably_empty = false;

  std::string ToString(const Pattern& q) const;
};

/// \brief Stateless planner over a graph's statistics.
class Planner {
 public:
  /// `enabled` = false yields the default full-scan plan (the ablation
  /// baseline).
  explicit Planner(bool enabled) : enabled_(enabled) {}

  EvalPlan Plan(const Graph& g, const Pattern& q) const;

 private:
  bool enabled_;
};

}  // namespace expfinder

#endif  // EXPFINDER_ENGINE_PLANNER_H_
