#include "src/engine/result_cache.h"

namespace expfinder {

std::shared_ptr<const QueryAnswer> ResultCache::Get(uint64_t fingerprint,
                                                    uint64_t graph_version) {
  if (capacity_ == 0) return nullptr;  // disabled: no lookup bookkeeping
  auto it = map_.find(fingerprint);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  if (it->second->graph_version != graph_version) {
    ++stale_drops_;
    ++misses_;
    lru_.erase(it->second);
    map_.erase(it);
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->answer;
}

void ResultCache::Put(uint64_t fingerprint, uint64_t graph_version,
                      std::shared_ptr<const QueryAnswer> answer) {
  if (capacity_ == 0) return;
  auto it = map_.find(fingerprint);
  if (it != map_.end()) {
    it->second->graph_version = graph_version;
    it->second->answer = std::move(answer);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front({fingerprint, graph_version, std::move(answer)});
  map_[fingerprint] = lru_.begin();
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().fingerprint);
    lru_.pop_back();
  }
}

void ResultCache::Clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace expfinder
