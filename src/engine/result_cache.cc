#include "src/engine/result_cache.h"

namespace expfinder {

uint64_t ResultCache::Key(uint64_t fingerprint, uint64_t graph_version) {
  uint64_t x = fingerprint ^ (graph_version + 0x9E3779B97F4A7C15ULL +
                              (fingerprint << 6) + (fingerprint >> 2));
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

std::shared_ptr<const QueryAnswer> ResultCache::Get(uint64_t fingerprint,
                                                    uint64_t graph_version) {
  if (capacity_ == 0) return nullptr;  // disabled: no lookup bookkeeping
  auto it = map_.find(Key(fingerprint, graph_version));
  if (it == map_.end() || it->second->fingerprint != fingerprint ||
      it->second->graph_version != graph_version) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->answer;
}

void ResultCache::Put(uint64_t fingerprint, uint64_t graph_version,
                      std::shared_ptr<const QueryAnswer> answer) {
  if (capacity_ == 0) return;
  const uint64_t key = Key(fingerprint, graph_version);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->fingerprint = fingerprint;
    it->second->graph_version = graph_version;
    it->second->answer = std::move(answer);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front({fingerprint, graph_version, std::move(answer)});
  map_[key] = lru_.begin();
  while (map_.size() > capacity_) {
    map_.erase(Key(lru_.back().fingerprint, lru_.back().graph_version));
    lru_.pop_back();
  }
}

void ResultCache::Clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace expfinder
