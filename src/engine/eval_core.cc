#include "src/engine/eval_core.h"

#include "src/matching/bounded_simulation.h"
#include "src/matching/dual_simulation.h"
#include "src/matching/simulation.h"

namespace expfinder {

namespace {

MatchRelation RunMatcher(const SnapshotPtr& s, const Pattern& q,
                         const MatchOptions& opts, MatchContext* ctx) {
  if (q.IsSimulationPattern()) return ComputeSimulation(s, q, opts, ctx);
  return ComputeBoundedSimulation(s, q, opts, ctx);
}

/// The cooperative interruption point polled at evaluation stage
/// boundaries: cancellation wins over the deadline (a cancelled request
/// should not masquerade as slow).
Status CheckInterrupts(const EvalOverrides& overrides) {
  if (overrides.cancelled != nullptr &&
      overrides.cancelled->load(std::memory_order_acquire)) {
    return Status::Cancelled("evaluation cancelled at stage boundary");
  }
  if (overrides.timer != nullptr && overrides.time_budget_ms > 0.0 &&
      overrides.timer->ElapsedMillis() > overrides.time_budget_ms) {
    return Status::DeadlineExceeded("time budget exhausted at stage boundary");
  }
  return Status::OK();
}

}  // namespace

uint64_t QueryCacheKey(const Pattern& q, MatchSemantics semantics) {
  // The canonical fingerprint, so equivalent conjunctions — e.g. a pattern
  // compiled from topic_terms vs. the same conditions written explicitly in
  // another order — land on the same cache line and maintained entry.
  uint64_t fp = q.CanonicalFingerprint();
  return semantics == MatchSemantics::kBoundedSimulation ? fp
                                                         : fp ^ 0x9E3779B97F4A7C15ULL;
}

Result<MatchRelation> EvalCore::Evaluate(const EngineSnapshot& snap,
                                         const Pattern& q, MatchSemantics semantics,
                                         const EvalOverrides& overrides,
                                         MatchContext* ctx,
                                         MatchContext* compressed_ctx,
                                         EvalPath* path) const {
  *path = EvalPath::kDirect;
  EvalPlan plan = planner_.Plan(snap.graph->graph(), q);
  plan.match_options.num_threads =
      overrides.match_threads.value_or(options_.match_threads);
  plan.match_options.ball_index = options_.ball_index;
  if (overrides.use_ball_index.has_value()) {
    plan.match_options.ball_index.enabled = *overrides.use_ball_index;
  }
  plan.match_options.topic_index = options_.topic_index;
  if (overrides.use_topic_index.has_value()) {
    plan.match_options.topic_index.enabled = *overrides.use_topic_index;
  }
  if (plan.provably_empty) {
    *path = EvalPath::kPlannerShortCircuit;
    return MatchRelation(q.NumNodes());
  }
  EF_RETURN_NOT_OK(CheckInterrupts(overrides));  // planned, not yet matched
  if (semantics == MatchSemantics::kDualSimulation) {
    // The forward-bisimulation quotient does not preserve parent
    // constraints, so dual queries always run directly on G.
    return ComputeDualSimulation(snap.graph, q, plan.match_options, ctx);
  }
  if (snap.compressed != nullptr && snap.compressed->IsCompatible(q)) {
    // The compressed view was frozen current at publish time — its
    // compatibility with snap.graph needs no version check here.
    *path = EvalPath::kCompressed;
    MatchRelation compressed =
        RunMatcher(snap.compressed_graph, q, plan.match_options, compressed_ctx);
    EF_RETURN_NOT_OK(CheckInterrupts(overrides));  // matched, not decompressed
    return snap.compressed->Decompress(compressed);
  }
  return RunMatcher(snap.graph, q, plan.match_options, ctx);
}

}  // namespace expfinder
