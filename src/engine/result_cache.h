// LRU cache of query answers ("the query engine directly returns M(Q,G) if
// it is already cached", paper §II). Keys are pattern fingerprints; each
// entry remembers the graph version it was computed against, so any graph
// mutation implicitly invalidates stale entries.

#ifndef EXPFINDER_ENGINE_RESULT_CACHE_H_
#define EXPFINDER_ENGINE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "src/matching/match_relation.h"
#include "src/matching/result_graph.h"

namespace expfinder {

/// \brief A cached evaluation: the match relation plus its result graph.
struct QueryAnswer {
  MatchRelation matches;
  ResultGraph result_graph;
};

/// \brief LRU map fingerprint -> QueryAnswer@graph-version.
///
/// `capacity == 0` means *disabled*: Get always misses and Put is a no-op,
/// with no map lookups and no hit/miss bookkeeping — the counters stay 0, so
/// a disabled cache is indistinguishable from one that was never consulted.
class ResultCache {
 public:
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  /// Fetches the entry if present *and* computed at `graph_version`;
  /// refreshes recency. Stale entries are dropped on lookup.
  std::shared_ptr<const QueryAnswer> Get(uint64_t fingerprint, uint64_t graph_version);

  /// Inserts/overwrites; evicts least-recently-used beyond capacity.
  void Put(uint64_t fingerprint, uint64_t graph_version,
           std::shared_ptr<const QueryAnswer> answer);

  void Clear();
  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t stale_drops() const { return stale_drops_; }

 private:
  struct Entry {
    uint64_t fingerprint;
    uint64_t graph_version;
    std::shared_ptr<const QueryAnswer> answer;
  };
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator> map_;
  size_t hits_ = 0, misses_ = 0, stale_drops_ = 0;
};

}  // namespace expfinder

#endif  // EXPFINDER_ENGINE_RESULT_CACHE_H_
