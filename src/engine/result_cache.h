// LRU cache of query answers ("the query engine directly returns M(Q,G) if
// it is already cached", paper §II). The graph version is folded into the
// cache key itself (ISSUE 6): an entry is the answer to (pattern
// fingerprint, graph version), so a lookup either finds the answer computed
// at exactly the requested version or misses — there is no staleness check
// to scatter at call sites, and a read pinned to an old snapshot
// (`as_of_version`) can never be served a newer relation. Entries for
// superseded versions are not proactively dropped; they keep serving pinned
// reads until LRU pressure evicts them.

#ifndef EXPFINDER_ENGINE_RESULT_CACHE_H_
#define EXPFINDER_ENGINE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "src/matching/match_relation.h"
#include "src/matching/result_graph.h"

namespace expfinder {

/// \brief A cached evaluation: the match relation plus its result graph.
struct QueryAnswer {
  MatchRelation matches;
  ResultGraph result_graph;
};

/// \brief LRU map (fingerprint, graph version) -> QueryAnswer.
///
/// `capacity == 0` means *disabled*: Get always misses and Put is a no-op,
/// with no map lookups and no hit/miss bookkeeping — the counters stay 0, so
/// a disabled cache is indistinguishable from one that was never consulted.
class ResultCache {
 public:
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  /// Fetches the answer computed at exactly (fingerprint, graph_version);
  /// refreshes recency. Entries at other versions neither match nor are
  /// disturbed.
  std::shared_ptr<const QueryAnswer> Get(uint64_t fingerprint, uint64_t graph_version);

  /// Inserts/overwrites the (fingerprint, graph_version) entry; evicts
  /// least-recently-used beyond capacity.
  void Put(uint64_t fingerprint, uint64_t graph_version,
           std::shared_ptr<const QueryAnswer> answer);

  void Clear();
  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  struct Entry {
    uint64_t fingerprint;
    uint64_t graph_version;
    std::shared_ptr<const QueryAnswer> answer;
  };

  /// The combined map key. Mixes version into the fingerprint
  /// (splitmix64-style) — entries verify the full (fingerprint, version)
  /// pair on lookup, so a 64-bit mix collision degrades to a miss, never a
  /// wrong answer.
  static uint64_t Key(uint64_t fingerprint, uint64_t graph_version);

  size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator> map_;
  size_t hits_ = 0, misses_ = 0;
};

}  // namespace expfinder

#endif  // EXPFINDER_ENGINE_RESULT_CACHE_H_
