#include "src/engine/query_engine.h"

#include <sstream>
#include <unordered_map>

#include "src/matching/dual_simulation.h"
#include "src/matching/bounded_simulation.h"
#include "src/matching/simulation.h"
#include "src/util/timer.h"

namespace expfinder {

namespace {

/// Rejects batches that would fail halfway (duplicate inserts, missing
/// deletes, bad endpoints). O(|batch|): only pairs touched by the batch are
/// tracked; untouched pairs are consulted via Graph::HasEdge.
Status ValidateBatch(const Graph& g, const UpdateBatch& batch) {
  auto key = [](NodeId a, NodeId b) { return (static_cast<uint64_t>(a) << 32) | b; };
  std::unordered_map<uint64_t, bool> touched;  // pair -> present after prefix
  touched.reserve(batch.size() * 2);
  for (size_t i = 0; i < batch.size(); ++i) {
    const GraphUpdate& u = batch[i];
    if (!g.IsValidNode(u.src) || !g.IsValidNode(u.dst)) {
      return Status::InvalidArgument("update " + std::to_string(i) +
                                     ": endpoint out of range");
    }
    uint64_t k = key(u.src, u.dst);
    auto it = touched.find(k);
    bool present = it != touched.end() ? it->second : g.HasEdge(u.src, u.dst);
    if (u.kind == GraphUpdate::Kind::kInsertEdge) {
      if (present) {
        return Status::AlreadyExists("update " + std::to_string(i) +
                                     ": edge already present " + u.ToString());
      }
      touched[k] = true;
    } else {
      if (!present) {
        return Status::NotFound("update " + std::to_string(i) + ": edge absent " +
                                u.ToString());
      }
      touched[k] = false;
    }
  }
  return Status::OK();
}

MatchRelation RunMatcher(const Graph& g, const Pattern& q, const MatchOptions& opts,
                         MatchContext* ctx) {
  if (q.IsSimulationPattern()) return ComputeSimulation(g, q, opts, ctx);
  return ComputeBoundedSimulation(g, q, opts, ctx);
}

/// The cooperative interruption point polled at evaluation stage
/// boundaries: cancellation wins over the deadline (a cancelled request
/// should not masquerade as slow).
Status CheckInterrupts(const EvalOverrides& overrides) {
  if (overrides.cancelled != nullptr &&
      overrides.cancelled->load(std::memory_order_acquire)) {
    return Status::Cancelled("evaluation cancelled at stage boundary");
  }
  if (overrides.timer != nullptr && overrides.time_budget_ms > 0.0 &&
      overrides.timer->ElapsedMillis() > overrides.time_budget_ms) {
    return Status::DeadlineExceeded("time budget exhausted at stage boundary");
  }
  return Status::OK();
}

}  // namespace

uint64_t QueryCacheKey(const Pattern& q, MatchSemantics semantics) {
  uint64_t fp = q.Fingerprint();
  return semantics == MatchSemantics::kBoundedSimulation ? fp
                                                         : fp ^ 0x9E3779B97F4A7C15ULL;
}

std::string EngineStats::ToString() const {
  std::ostringstream os;
  os << "queries=" << queries << " cache_hits=" << cache_hits
     << " maintained_hits=" << maintained_hits
     << " compressed_evals=" << compressed_evals << " direct_evals=" << direct_evals
     << " planner_short_circuits=" << planner_short_circuits
     << " batches=" << batches_applied << " updates=" << updates_applied
     << " csr_builds=" << csr_builds << " ball_index_builds=" << ball_index_builds
     << " ball_hits=" << ball_hits << " bfs_fallbacks=" << bfs_fallbacks
     << " last_eval_ms=" << last_eval_ms;
  return os.str();
}

QueryEngine::QueryEngine(Graph* g, EngineOptions options)
    : g_(g),
      options_(options),
      planner_(options.use_planner),
      cache_(options.use_cache ? options.cache_capacity : 0) {
  if (options_.use_compression) {
    Status st = CompressNow();
    EF_CHECK(st.ok()) << "initial compression failed: " << st;
  }
}

Status QueryEngine::CompressNow() {
  if (compression_ != nullptr &&
      compression_->current().source_version() == g_->version()) {
    return Status::OK();
  }
  if (compression_ == nullptr) {
    auto mc = MaintainedCompression::Create(g_, options_.compression_schema);
    if (!mc.ok()) return mc.status();
    compression_ = std::make_unique<MaintainedCompression>(std::move(mc).value());
  } else {
    compression_->Rebuild();
  }
  return Status::OK();
}

const CompressedGraph* QueryEngine::compressed() const {
  return compression_ ? &compression_->current() : nullptr;
}

Result<MatchRelation> QueryEngine::EvaluateWith(const Pattern& q,
                                                MatchSemantics semantics,
                                                const EvalOverrides& overrides,
                                                MatchContext* ctx,
                                                MatchContext* compressed_ctx,
                                                EvalPath* path) const {
  *path = EvalPath::kDirect;
  EvalPlan plan = planner_.Plan(*g_, q);
  plan.match_options.num_threads =
      overrides.match_threads.value_or(options_.match_threads);
  plan.match_options.ball_index = options_.ball_index;
  if (overrides.use_ball_index.has_value()) {
    plan.match_options.ball_index.enabled = *overrides.use_ball_index;
  }
  if (plan.provably_empty) {
    *path = EvalPath::kPlannerShortCircuit;
    return MatchRelation(q.NumNodes());
  }
  EF_RETURN_NOT_OK(CheckInterrupts(overrides));  // planned, not yet matched
  if (semantics == MatchSemantics::kDualSimulation) {
    // The forward-bisimulation quotient does not preserve parent
    // constraints, so dual queries always run directly on G.
    return ComputeDualSimulation(*g_, q, plan.match_options, ctx);
  }
  if (options_.use_compression && compression_ != nullptr) {
    const CompressedGraph& cg = compression_->current();
    if (cg.source_version() == g_->version() && cg.IsCompatible(q)) {
      *path = EvalPath::kCompressed;
      MatchRelation compressed =
          RunMatcher(cg.gc(), q, plan.match_options, compressed_ctx);
      EF_RETURN_NOT_OK(CheckInterrupts(overrides));  // matched, not decompressed
      return cg.Decompress(compressed);
    }
  }
  return RunMatcher(*g_, q, plan.match_options, ctx);
}

std::optional<MatchRelation> QueryEngine::MaintainedSnapshot(
    const Pattern& q, MatchSemantics semantics) const {
  auto it = maintained_.find(QueryCacheKey(q, semantics));
  if (it == maintained_.end()) return std::nullopt;
  return it->second.Snapshot();
}

Result<MatchRelation> QueryEngine::EvaluateUncached(const Pattern& q,
                                                    MatchSemantics semantics,
                                                    EvalPath* path) {
  return EvaluateWith(q, semantics, {}, &match_ctx_, &compressed_ctx_, path);
}

void QueryEngine::RefreshDerivedStats() {
  stats_.csr_builds = match_ctx_.snapshot_builds() + compressed_ctx_.snapshot_builds();
  size_t builds = match_ctx_.ball_index_builds() + compressed_ctx_.ball_index_builds();
  size_t hits = match_ctx_.ball_hits() + compressed_ctx_.ball_hits();
  size_t fallbacks = match_ctx_.bfs_fallbacks() + compressed_ctx_.bfs_fallbacks();
  for (const auto& [fp, m] : maintained_) {
    builds += m.BallIndexBuilds();
    hits += m.BallHits();
    fallbacks += m.BfsFallbacks();
  }
  stats_.ball_index_builds = builds;
  stats_.ball_hits = hits;
  stats_.bfs_fallbacks = fallbacks;
}

Result<std::shared_ptr<const QueryAnswer>> QueryEngine::Evaluate(
    const Pattern& q, MatchSemantics semantics) {
  EF_RETURN_NOT_OK(q.Validate());
  Timer timer;
  ++stats_.queries;
  uint64_t key = QueryCacheKey(q, semantics);

  if (options_.use_cache) {
    if (auto hit = cache_.Get(key, g_->version())) {
      ++stats_.cache_hits;
      stats_.last_eval_ms = timer.ElapsedMillis();
      return hit;
    }
  }

  MatchRelation matches;
  if (auto snapshot = MaintainedSnapshot(q, semantics)) {
    // Maintained queries are their own serving path: they bypass
    // EvaluateUncached, so they must not fall through to the
    // direct/compressed classification below.
    ++stats_.maintained_hits;
    matches = std::move(*snapshot);
  } else {
    EvalPath path = EvalPath::kDirect;
    auto res = EvaluateUncached(q, semantics, &path);
    if (!res.ok()) return res.status();
    matches = std::move(res).value();
    switch (path) {
      case EvalPath::kPlannerShortCircuit:
        ++stats_.planner_short_circuits;
        break;
      case EvalPath::kCompressed:
        ++stats_.compressed_evals;
        break;
      case EvalPath::kDirect:
        ++stats_.direct_evals;
        break;
    }
  }

  ResultGraph rg(*g_, q, matches, &match_ctx_);
  auto answer =
      std::make_shared<QueryAnswer>(QueryAnswer{std::move(matches), std::move(rg)});
  if (options_.use_cache) cache_.Put(key, g_->version(), answer);
  RefreshDerivedStats();
  stats_.last_eval_ms = timer.ElapsedMillis();
  return std::shared_ptr<const QueryAnswer>(answer);
}

Result<std::vector<RankedMatch>> QueryEngine::TopK(const Pattern& q, size_t k,
                                                   RankingMetric metric,
                                                   MatchSemantics semantics) {
  auto answer = Evaluate(q, semantics);
  if (!answer.ok()) return answer.status();
  return TopKMatchesWith((*answer)->result_graph, q, k, metric);
}

Result<NodeId> QueryEngine::AddNode(
    std::string_view label,
    const std::vector<std::pair<std::string, AttrValue>>& attrs) {
  NodeId v = g_->AddNode(label);
  for (const auto& [key, value] : attrs) g_->SetAttr(v, key, value);
  for (auto& [fp, m] : maintained_) m.OnNodeAdded(v);
  if (compression_ != nullptr && options_.maintain_compression) {
    compression_->OnNodeAdded(v);
  }
  return v;
}

Status QueryEngine::RegisterMaintainedQuery(const Pattern& q,
                                            MatchSemantics semantics) {
  EF_RETURN_NOT_OK(q.Validate());
  uint64_t key = QueryCacheKey(q, semantics);
  if (maintained_.count(key)) {
    return Status::AlreadyExists("query already maintained");
  }
  MatchOptions match_opts;
  match_opts.ball_index = options_.ball_index;
  Maintained m;
  if (semantics == MatchSemantics::kDualSimulation) {
    m.dual = std::make_unique<IncrementalDualSimulation>(g_, q, match_opts);
  } else if (q.IsSimulationPattern()) {
    m.sim = std::make_unique<IncrementalSimulation>(g_, q);
  } else {
    m.bounded = std::make_unique<IncrementalBoundedSimulation>(g_, q, match_opts);
  }
  maintained_.emplace(key, std::move(m));
  RefreshDerivedStats();
  return Status::OK();
}

bool QueryEngine::IsMaintained(const Pattern& q, MatchSemantics semantics) const {
  return maintained_.count(QueryCacheKey(q, semantics)) > 0;
}

Status QueryEngine::ApplyUpdates(const UpdateBatch& batch) {
  EF_RETURN_NOT_OK(ValidateBatch(*g_, batch));
  for (auto& [fp, m] : maintained_) m.PreUpdate(batch);
  EF_RETURN_NOT_OK(ApplyBatch(g_, batch));
  for (auto& [fp, m] : maintained_) m.PostUpdate(batch);
  if (compression_ != nullptr && options_.maintain_compression) {
    compression_->OnGraphUpdated(batch);
  }
  ++stats_.batches_applied;
  stats_.updates_applied += batch.size();
  RefreshDerivedStats();
  return Status::OK();
}

}  // namespace expfinder
