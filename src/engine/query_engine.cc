#include "src/engine/query_engine.h"

#include <sstream>
#include <unordered_map>

#include "src/util/timer.h"

namespace expfinder {

namespace {

/// Rejects batches that would fail halfway (duplicate inserts, missing
/// deletes, bad endpoints). O(|batch|): only pairs touched by the batch are
/// tracked; untouched pairs are consulted via Graph::HasEdge.
Status ValidateBatch(const Graph& g, const UpdateBatch& batch) {
  auto key = [](NodeId a, NodeId b) { return (static_cast<uint64_t>(a) << 32) | b; };
  std::unordered_map<uint64_t, bool> touched;  // pair -> present after prefix
  touched.reserve(batch.size() * 2);
  for (size_t i = 0; i < batch.size(); ++i) {
    const GraphUpdate& u = batch[i];
    if (!g.IsValidNode(u.src) || !g.IsValidNode(u.dst)) {
      return Status::InvalidArgument("update " + std::to_string(i) +
                                     ": endpoint out of range");
    }
    uint64_t k = key(u.src, u.dst);
    auto it = touched.find(k);
    bool present = it != touched.end() ? it->second : g.HasEdge(u.src, u.dst);
    if (u.kind == GraphUpdate::Kind::kInsertEdge) {
      if (present) {
        return Status::AlreadyExists("update " + std::to_string(i) +
                                     ": edge already present " + u.ToString());
      }
      touched[k] = true;
    } else {
      if (!present) {
        return Status::NotFound("update " + std::to_string(i) + ": edge absent " +
                                u.ToString());
      }
      touched[k] = false;
    }
  }
  return Status::OK();
}

}  // namespace

std::string EngineStats::ToString() const {
  std::ostringstream os;
  os << "queries=" << queries << " cache_hits=" << cache_hits
     << " maintained_hits=" << maintained_hits
     << " compressed_evals=" << compressed_evals << " direct_evals=" << direct_evals
     << " planner_short_circuits=" << planner_short_circuits
     << " batches=" << batches_applied << " updates=" << updates_applied
     << " csr_builds=" << csr_builds
     << " snapshots_published=" << snapshots_published
     << " snapshot_acquires=" << snapshot_acquires
     << " snapshots_retired=" << snapshots_retired
     << " ball_index_builds=" << ball_index_builds
     << " ball_hits=" << ball_hits << " bfs_fallbacks=" << bfs_fallbacks
     << " topic_index_builds=" << topic_index_builds
     << " posting_hits=" << posting_hits
     << " seed_scan_fallbacks=" << seed_scan_fallbacks
     << " last_eval_ms=" << last_eval_ms;
  return os.str();
}

QueryEngine::QueryEngine(Graph* g, EngineOptions options)
    : g_(g),
      core_(options),
      cache_(options.use_cache ? options.cache_capacity : 0) {
  if (options.use_compression) {
    Status st = CompressNow();
    EF_CHECK(st.ok()) << "initial compression failed: " << st;
  }
}

Status QueryEngine::CompressNow() {
  if (compression_ != nullptr &&
      compression_->current().source_version() == g_->version()) {
    return Status::OK();
  }
  if (compression_ == nullptr) {
    auto mc = MaintainedCompression::Create(g_, core_.options().compression_schema);
    if (!mc.ok()) return mc.status();
    compression_ = std::make_unique<MaintainedCompression>(std::move(mc).value());
  } else {
    compression_->Rebuild();
  }
  BumpEngineSeq();
  return Status::OK();
}

const CompressedGraph* QueryEngine::compressed() const {
  return compression_ ? &compression_->current() : nullptr;
}

std::shared_ptr<const EngineSnapshot> QueryEngine::Publish() {
  ++stats_.snapshot_acquires;
  if (published_ != nullptr && published_->engine_seq == engine_seq_ &&
      published_->version == g_->version()) {
    return published_;
  }
  auto next = std::make_shared<EngineSnapshot>();
  // Reuse the published graph handle when the graph itself didn't change
  // (e.g. a republish owed to RegisterMaintainedQuery): no copy, no CSR
  // build, and the shared ball index stays warm.
  if (published_ != nullptr && published_->graph->uid() == g_->uid() &&
      published_->graph->version() == g_->version()) {
    next->graph = published_->graph;
  } else {
    next->graph = g_->Publish();
    ++snapshot_csr_builds_;
  }
  const EngineOptions& opts = core_.options();
  if (opts.use_compression && compression_ != nullptr &&
      compression_->current().source_version() == g_->version()) {
    // Freeze the compressed view only when it is current — the snapshot
    // then needs no version check at evaluation time. The frozen handles
    // are reused across publishes while the view is unchanged.
    const CompressedGraph& cg = compression_->current();
    if (published_ != nullptr && published_->compressed != nullptr &&
        published_->compressed->source_version() == cg.source_version() &&
        published_->compressed_graph->uid() == cg.gc().uid() &&
        published_->compressed_graph->version() == cg.gc().version()) {
      next->compressed = published_->compressed;
      next->compressed_graph = published_->compressed_graph;
    } else {
      next->compressed = std::make_shared<const CompressedGraph>(cg);
      next->compressed_graph = next->compressed->gc().Publish();
      ++snapshot_csr_builds_;
    }
  }
  next->maintained.reserve(maintained_.size());
  for (const auto& [key, m] : maintained_) {
    next->maintained.emplace(key, m.Snapshot());
  }
  next->version = g_->version();
  next->engine_seq = engine_seq_;
  if (published_ != nullptr) ++stats_.snapshots_retired;
  published_ = std::move(next);
  ++stats_.snapshots_published;
  // The engine's own contexts follow the published snapshot, so
  // Evaluate()/TopK() share the frozen CSR and ball index with any service
  // worker pinned to the same version.
  match_ctx_.BindSnapshot(published_->graph);
  compressed_ctx_.BindSnapshot(published_->compressed_graph);
  RefreshDerivedStats();
  return published_;
}

Result<MatchRelation> QueryEngine::EvaluateWith(const EngineSnapshot& snap,
                                                const Pattern& q,
                                                MatchSemantics semantics,
                                                const EvalOverrides& overrides,
                                                MatchContext* ctx,
                                                MatchContext* compressed_ctx,
                                                EvalPath* path) const {
  return core_.Evaluate(snap, q, semantics, overrides, ctx, compressed_ctx, path);
}

std::optional<MatchRelation> QueryEngine::MaintainedSnapshot(
    const Pattern& q, MatchSemantics semantics) const {
  auto it = maintained_.find(QueryCacheKey(q, semantics));
  if (it == maintained_.end()) return std::nullopt;
  return it->second.Snapshot();
}

void QueryEngine::RefreshDerivedStats() {
  stats_.csr_builds = snapshot_csr_builds_ + match_ctx_.snapshot_builds() +
                      compressed_ctx_.snapshot_builds();
  size_t builds = match_ctx_.ball_index_builds() + compressed_ctx_.ball_index_builds();
  size_t hits = match_ctx_.ball_hits() + compressed_ctx_.ball_hits();
  size_t fallbacks = match_ctx_.bfs_fallbacks() + compressed_ctx_.bfs_fallbacks();
  for (const auto& [fp, m] : maintained_) {
    builds += m.BallIndexBuilds();
    hits += m.BallHits();
    fallbacks += m.BfsFallbacks();
  }
  stats_.ball_index_builds = builds;
  stats_.ball_hits = hits;
  stats_.bfs_fallbacks = fallbacks;
  size_t topic_builds =
      match_ctx_.topic_index_builds() + compressed_ctx_.topic_index_builds();
  if (maintained_topics_ != nullptr) topic_builds += maintained_topics_->builds();
  stats_.topic_index_builds = topic_builds;
  stats_.posting_hits = match_ctx_.posting_hits() + compressed_ctx_.posting_hits();
  stats_.seed_scan_fallbacks =
      match_ctx_.seed_scan_fallbacks() + compressed_ctx_.seed_scan_fallbacks();
}

Result<std::shared_ptr<const QueryAnswer>> QueryEngine::Evaluate(
    const Pattern& q, MatchSemantics semantics) {
  EF_RETURN_NOT_OK(q.Validate());
  Timer timer;
  // Stamps last_eval_ms on every exit — all five serving paths and failed
  // evaluations alike, so the timing telemetry is uniform.
  struct StampOnExit {
    const Timer& timer;
    double& out;
    ~StampOnExit() { out = timer.ElapsedMillis(); }
  } stamp{timer, stats_.last_eval_ms};
  ++stats_.queries;
  auto snap = Publish();
  uint64_t key = QueryCacheKey(q, semantics);

  if (core_.options().use_cache) {
    if (auto hit = cache_.Get(key, snap->version)) {
      ++stats_.cache_hits;
      return hit;
    }
  }

  MatchRelation matches;
  if (const MatchRelation* maintained = snap->Maintained(key)) {
    // Maintained queries are their own serving path: they bypass the eval
    // core, so they must not fall through to the direct/compressed
    // classification below.
    ++stats_.maintained_hits;
    matches = *maintained;
  } else {
    EvalPath path = EvalPath::kDirect;
    auto res =
        core_.Evaluate(*snap, q, semantics, {}, &match_ctx_, &compressed_ctx_, &path);
    if (!res.ok()) return res.status();
    matches = std::move(res).value();
    switch (path) {
      case EvalPath::kPlannerShortCircuit:
        ++stats_.planner_short_circuits;
        break;
      case EvalPath::kCompressed:
        ++stats_.compressed_evals;
        break;
      case EvalPath::kDirect:
        ++stats_.direct_evals;
        break;
    }
  }

  ResultGraph rg(snap->graph, q, matches, &match_ctx_);
  auto answer =
      std::make_shared<QueryAnswer>(QueryAnswer{std::move(matches), std::move(rg)});
  if (core_.options().use_cache) cache_.Put(key, snap->version, answer);
  RefreshDerivedStats();
  return std::shared_ptr<const QueryAnswer>(answer);
}

Result<std::vector<RankedMatch>> QueryEngine::TopK(const Pattern& q, size_t k,
                                                   RankingMetric metric,
                                                   MatchSemantics semantics) {
  auto answer = Evaluate(q, semantics);
  if (!answer.ok()) return answer.status();
  return TopKMatchesWith((*answer)->result_graph, q, k, metric);
}

Result<NodeId> QueryEngine::AddNode(
    std::string_view label,
    const std::vector<std::pair<std::string, AttrValue>>& attrs) {
  NodeId v = g_->AddNode(label);
  for (const auto& [key, value] : attrs) g_->SetAttr(v, key, value);
  if (maintained_topics_ != nullptr) maintained_topics_->OnNodeAdded(*g_, v);
  for (auto& [fp, m] : maintained_) m.OnNodeAdded(v);
  if (compression_ != nullptr && core_.options().maintain_compression) {
    compression_->OnNodeAdded(v);
  }
  BumpEngineSeq();
  return v;
}

Status QueryEngine::RegisterMaintainedQuery(const Pattern& q,
                                            MatchSemantics semantics) {
  EF_RETURN_NOT_OK(q.Validate());
  uint64_t key = QueryCacheKey(q, semantics);
  if (maintained_.count(key)) {
    return Status::AlreadyExists("query already maintained");
  }
  MatchOptions match_opts;
  match_opts.ball_index = core_.options().ball_index;
  match_opts.topic_index = core_.options().topic_index;
  if (match_opts.topic_index.enabled && maintained_topics_ == nullptr &&
      HasTextPredicates(q)) {
    // Maintained queries are reused by construction, so build eagerly (the
    // deferred-use policy guards the per-snapshot slots, not this one).
    // A budget refusal leaves registration on the scan path.
    maintained_topics_ = MaintainedTopicIndex::Build(*g_, match_opts.topic_index);
  }
  MaintainedTopicIndex* topics = maintained_topics_.get();
  Maintained m;
  if (semantics == MatchSemantics::kDualSimulation) {
    m.dual = std::make_unique<IncrementalDualSimulation>(g_, q, match_opts, topics);
  } else if (q.IsSimulationPattern()) {
    m.sim = std::make_unique<IncrementalSimulation>(g_, q, match_opts, topics);
  } else {
    m.bounded =
        std::make_unique<IncrementalBoundedSimulation>(g_, q, match_opts, topics);
  }
  maintained_.emplace(key, std::move(m));
  BumpEngineSeq();
  RefreshDerivedStats();
  return Status::OK();
}

bool QueryEngine::IsMaintained(const Pattern& q, MatchSemantics semantics) const {
  return maintained_.count(QueryCacheKey(q, semantics)) > 0;
}

Status QueryEngine::ApplyUpdates(const UpdateBatch& batch) {
  EF_RETURN_NOT_OK(ValidateBatch(*g_, batch));
  // The maintainer Pre/PostUpdate pair is the first half of the snapshot
  // transition; the second half is the next Publish(), which freezes the
  // post-update state into the successor snapshot readers will pin.
  for (auto& [fp, m] : maintained_) m.PreUpdate(batch);
  EF_RETURN_NOT_OK(ApplyBatch(g_, batch));
  for (auto& [fp, m] : maintained_) m.PostUpdate(batch);
  if (compression_ != nullptr && core_.options().maintain_compression) {
    compression_->OnGraphUpdated(batch);
  }
  ++stats_.batches_applied;
  stats_.updates_applied += batch.size();
  BumpEngineSeq();
  RefreshDerivedStats();
  return Status::OK();
}

}  // namespace expfinder
