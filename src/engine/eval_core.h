// The stateless evaluation core of the query engine (ISSUE 6): everything
// needed to answer "evaluate pattern Q against published state S under
// overrides O" as a pure function, with no mutable engine state in sight.
//
// The split mirrors the paper's architecture (§II, Fig. 2 separates the
// matching computation from the store it runs over):
//
//   * EngineSnapshot is one published, immutable engine state — the graph
//     snapshot, the frozen compressed view (when current at publish time),
//     and the materialized relations of every maintained query. Handles are
//     shared_ptr<const>: readers pin one and evaluate against it lock-free,
//     concurrently with writers publishing successors.
//   * EvalCore owns only configuration (EngineOptions + the planner) and is
//     const end to end: plan, short-circuit, dispatch to the dual /
//     compressed / direct matcher, decompress — a pure function of
//     (snapshot, pattern, overrides). Any number of threads may call it
//     concurrently, each with its own MatchContext pair.
//
// QueryEngine composes an EvalCore with the stateful half (cache,
// incremental maintainers, compression, publishing); ExpFinderService
// serves every read through a pinned EngineSnapshot and this core.

#ifndef EXPFINDER_ENGINE_EVAL_CORE_H_
#define EXPFINDER_ENGINE_EVAL_CORE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <unordered_map>

#include "src/compression/compressed_graph.h"
#include "src/engine/planner.h"
#include "src/graph/graph_snapshot.h"
#include "src/matching/match_context.h"
#include "src/matching/match_relation.h"
#include "src/query/pattern.h"
#include "src/util/result.h"
#include "src/util/timer.h"

namespace expfinder {

/// \brief Matching semantics the engine can evaluate.
enum class MatchSemantics {
  /// Bounded simulation — the paper's notion (bound-1 = plain simulation).
  kBoundedSimulation,
  /// Bounded *dual* simulation — parents must match too (extension; see
  /// dual_simulation.h). Not servable from the compressed graph (the
  /// forward-bisimulation quotient does not preserve parent constraints) or
  /// from maintained bounded-simulation states.
  kDualSimulation,
};

/// Cache key combining the pattern's canonical fingerprint (condition order
/// within a node does not distinguish queries — see
/// Pattern::CanonicalFingerprint) with the semantics; shared by
/// the engine's result cache and the service-layer cache so both serving
/// stacks agree on what "the same query" means. (Graph version is *not*
/// part of this key — ResultCache folds it in itself; see result_cache.h.)
uint64_t QueryCacheKey(const Pattern& q, MatchSemantics semantics);

/// \brief How an uncached evaluation produced its relation.
enum class EvalPath { kPlannerShortCircuit, kCompressed, kDirect };

/// \brief Per-call evaluation overrides (the service layer's per-request
/// knobs). Absent fields fall back to the core's EngineOptions.
struct EvalOverrides {
  std::optional<uint32_t> match_threads;
  /// Per-call ball-index participation; absent = EngineOptions::ball_index.
  /// Disabling never changes the relation — only the traversal cost — and a
  /// request that disables it does not invalidate the cached index.
  std::optional<bool> use_ball_index;
  /// Per-call topic-index participation; absent = EngineOptions::topic_index.
  /// Same contract as use_ball_index: never changes the relation.
  std::optional<bool> use_topic_index;
  /// Cooperative cancellation flag, polled at evaluation stage boundaries
  /// (after planning, before each matcher run, before decompression). When
  /// it reads true the evaluation stops with Status::Cancelled at the next
  /// boundary; a running fixpoint is never preempted mid-stage. Null =
  /// not cancellable.
  const std::atomic<bool>* cancelled = nullptr;
  /// Deadline enforcement at the same stage boundaries: with `timer` set
  /// and `time_budget_ms` > 0, a boundary reached after the budget elapsed
  /// fails the evaluation with Status::DeadlineExceeded. The timer is the
  /// caller's, so the budget covers the request's whole life (queue wait
  /// included), not just this call.
  const Timer* timer = nullptr;
  double time_budget_ms = 0.0;
};

/// \brief Engine configuration.
struct EngineOptions {
  bool use_cache = true;
  size_t cache_capacity = 32;
  /// Build and query a compressed graph when the pattern is compatible.
  bool use_compression = false;
  CompressionSchema compression_schema{true, {"experience"}};
  /// Keep Gc in sync after ApplyUpdates (vs. rebuild-on-demand).
  bool maintain_compression = true;
  /// Candidate initialization via label index + selectivity ordering.
  bool use_planner = true;
  /// Worker threads for the matchers' parallel seeding phase
  /// (0 = hardware_concurrency, 1 = serial; results are identical either
  /// way — see MatchOptions::num_threads).
  uint32_t match_threads = 0;
  /// Ball-index participation and memory caps for the matchers and the
  /// incremental maintainers (see khop_index.h). Relations are identical
  /// with the index on, off, or capped into BFS fallback.
  BallIndexOptions ball_index;
  /// Topic inverted-index participation for text-predicate seeding (see
  /// index/topic_index.h). Relations are identical with the index on, off,
  /// or capped into scan fallback.
  TopicIndexOptions topic_index;
};

/// \brief One published, immutable engine state: everything a read needs,
/// frozen together at a version. Produced by QueryEngine::Publish();
/// readers pin the handle and evaluate lock-free for as long as they hold
/// it.
struct EngineSnapshot {
  /// The published graph (never null on a published snapshot).
  SnapshotPtr graph;
  /// The compressed view, frozen at publish — only attached when
  /// compression was enabled *and* current (source_version == version) at
  /// publish time, so its compatibility with the graph needs no runtime
  /// version check. Null otherwise.
  std::shared_ptr<const CompressedGraph> compressed;
  /// Snapshot over `compressed`'s Gc (the compressed matchers and their
  /// context bind to this); null iff `compressed` is.
  SnapshotPtr compressed_graph;
  /// Materialized relations of every maintained query, keyed by
  /// QueryCacheKey — a maintained read is a map lookup + relation copy,
  /// never a peek at live maintainer state.
  std::unordered_map<uint64_t, MatchRelation> maintained;
  /// Graph version this snapshot publishes (== graph->version()).
  uint64_t version = 0;
  /// Engine-state sequence number: bumped by every engine mutation,
  /// including those that leave the graph version alone (registering a
  /// maintained query, compressing). Distinguishes republishes.
  uint64_t engine_seq = 0;

  /// The maintained relation for `key`, or nullptr.
  const MatchRelation* Maintained(uint64_t key) const {
    auto it = maintained.find(key);
    return it == maintained.end() ? nullptr : &it->second;
  }
};

/// \brief Stateless, const evaluation core: plan + dispatch + match +
/// decompress over one pinned EngineSnapshot. Thread-safe by construction —
/// it holds configuration only; all scratch comes in through the contexts.
class EvalCore {
 public:
  explicit EvalCore(const EngineOptions& options)
      : options_(options), planner_(options.use_planner) {}

  const EngineOptions& options() const { return options_; }

  /// Evaluates Q against `snap` under the chosen semantics. Pure function
  /// of (snap, q, overrides) — consults no cache and no maintained state
  /// (those are the stateful facade's serving paths) and updates no stats;
  /// `path` reports how the relation was produced. Each concurrent call
  /// needs contexts no other call is using (`ctx` evaluates over the graph,
  /// `compressed_ctx` over Gc); both are bound to the snapshot's handles
  /// for the duration.
  Result<MatchRelation> Evaluate(const EngineSnapshot& snap, const Pattern& q,
                                 MatchSemantics semantics,
                                 const EvalOverrides& overrides, MatchContext* ctx,
                                 MatchContext* compressed_ctx, EvalPath* path) const;

 private:
  EngineOptions options_;
  Planner planner_;
};

}  // namespace expfinder

#endif  // EXPFINDER_ENGINE_EVAL_CORE_H_
