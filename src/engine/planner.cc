#include "src/engine/planner.h"

#include <algorithm>
#include <sstream>

namespace expfinder {

EvalPlan Planner::Plan(const Graph& g, const Pattern& q) const {
  EvalPlan plan;
  plan.match_options.use_label_index = enabled_;
  plan.estimated_candidates.resize(q.NumNodes(), g.NumNodes());
  plan.node_order.resize(q.NumNodes());
  for (PatternNodeId u = 0; u < q.NumNodes(); ++u) plan.node_order[u] = u;
  if (!enabled_) return plan;

  for (PatternNodeId u = 0; u < q.NumNodes(); ++u) {
    const PatternNode& n = q.node(u);
    size_t estimate = g.NumNodes();
    if (!n.label.empty()) {
      auto lid = g.FindLabel(n.label);
      if (!lid) {
        plan.provably_empty = true;
        estimate = 0;
      } else {
        estimate = g.NodesWithLabel(*lid).size();
      }
    }
    // Independence heuristic: each condition halves the candidates; unknown
    // attribute keys cannot match at all. Any-attribute ("*") conditions are
    // evaluated over every value a node carries, so they never prove
    // emptiness here.
    for (const Condition& c : n.conditions) {
      if (!c.is_any_attr() && !g.FindAttrKey(c.attr())) {
        plan.provably_empty = true;
        estimate = 0;
        break;
      }
      estimate = (estimate + 1) / 2;
    }
    plan.estimated_candidates[u] = estimate;
  }
  std::sort(plan.node_order.begin(), plan.node_order.end(),
            [&](PatternNodeId a, PatternNodeId b) {
              if (plan.estimated_candidates[a] != plan.estimated_candidates[b]) {
                return plan.estimated_candidates[a] < plan.estimated_candidates[b];
              }
              return a < b;
            });
  return plan;
}

std::string EvalPlan::ToString(const Pattern& q) const {
  std::ostringstream os;
  os << "plan{label_index=" << (match_options.use_label_index ? "on" : "off")
     << ", empty=" << (provably_empty ? "yes" : "no") << ", order=[";
  for (size_t i = 0; i < node_order.size(); ++i) {
    if (i) os << ", ";
    os << q.node(node_order[i]).name << "~" << estimated_candidates[node_order[i]];
  }
  os << "]}";
  return os.str();
}

}  // namespace expfinder
