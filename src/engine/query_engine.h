// The ExpFinder query engine (paper §II, Fig. 2): evaluates pattern
// queries, ranks matches, and coordinates the result cache, the incremental
// computation module, and the graph compression module:
//
//   Evaluate(Q):  cache hit -> return cached M(Q,G)
//                 maintained query -> snapshot from incremental state
//                 compressed graph available & compatible -> evaluate on Gc,
//                    decompress
//                 otherwise -> direct (bounded) simulation on G
//   ApplyUpdates: routes batches through every registered incremental
//                 state, then re-stabilizes the compressed graph.

#ifndef EXPFINDER_ENGINE_QUERY_ENGINE_H_
#define EXPFINDER_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <unordered_map>

#include "src/compression/maintenance.h"
#include "src/engine/planner.h"
#include "src/engine/result_cache.h"
#include "src/incremental/inc_bounded.h"
#include "src/incremental/inc_dual.h"
#include "src/incremental/inc_simulation.h"
#include "src/matching/match_context.h"
#include "src/ranking/topk.h"
#include "src/util/timer.h"

namespace expfinder {

/// \brief Matching semantics the engine can evaluate.
enum class MatchSemantics {
  /// Bounded simulation — the paper's notion (bound-1 = plain simulation).
  kBoundedSimulation,
  /// Bounded *dual* simulation — parents must match too (extension; see
  /// dual_simulation.h). Not servable from the compressed graph (the
  /// forward-bisimulation quotient does not preserve parent constraints) or
  /// from maintained bounded-simulation states.
  kDualSimulation,
};

/// Cache key combining the pattern fingerprint with the semantics; shared by
/// the engine's result cache and the service-layer cache so both serving
/// stacks agree on what "the same query" means.
uint64_t QueryCacheKey(const Pattern& q, MatchSemantics semantics);

/// \brief How an uncached evaluation produced its relation.
enum class EvalPath { kPlannerShortCircuit, kCompressed, kDirect };

/// \brief Per-call evaluation overrides (the service layer's per-request
/// knobs). Absent fields fall back to the engine's EngineOptions.
struct EvalOverrides {
  std::optional<uint32_t> match_threads;
  /// Per-call ball-index participation; absent = EngineOptions::ball_index.
  /// Disabling never changes the relation — only the traversal cost — and a
  /// request that disables it does not invalidate the cached index.
  std::optional<bool> use_ball_index;
  /// Cooperative cancellation flag, polled at evaluation stage boundaries
  /// (after planning, before each matcher run, before decompression). When
  /// it reads true the evaluation stops with Status::Cancelled at the next
  /// boundary; a running fixpoint is never preempted mid-stage. Null =
  /// not cancellable.
  const std::atomic<bool>* cancelled = nullptr;
  /// Deadline enforcement at the same stage boundaries: with `timer` set
  /// and `time_budget_ms` > 0, a boundary reached after the budget elapsed
  /// fails the evaluation with Status::DeadlineExceeded. The timer is the
  /// caller's, so the budget covers the request's whole life (queue wait
  /// included), not just this call.
  const Timer* timer = nullptr;
  double time_budget_ms = 0.0;
};

/// \brief Engine configuration.
struct EngineOptions {
  bool use_cache = true;
  size_t cache_capacity = 32;
  /// Build and query a compressed graph when the pattern is compatible.
  bool use_compression = false;
  CompressionSchema compression_schema{true, {"experience"}};
  /// Keep Gc in sync after ApplyUpdates (vs. rebuild-on-demand).
  bool maintain_compression = true;
  /// Candidate initialization via label index + selectivity ordering.
  bool use_planner = true;
  /// Worker threads for the matchers' parallel seeding phase
  /// (0 = hardware_concurrency, 1 = serial; results are identical either
  /// way — see MatchOptions::num_threads).
  uint32_t match_threads = 0;
  /// Ball-index participation and memory caps for the matchers and the
  /// incremental maintainers (see khop_index.h). Relations are identical
  /// with the index on, off, or capped into BFS fallback.
  BallIndexOptions ball_index;
};

/// \brief Execution telemetry (cumulative + last query breakdown).
///
/// Every query is classified into exactly one serving path, so
///   queries == cache_hits + maintained_hits + planner_short_circuits +
///              compressed_evals + direct_evals
/// holds at all times (planner short circuits used to be double-counted as
/// direct evals; maintained hits bypass EvaluateUncached entirely but still
/// set last_eval_ms).
struct EngineStats {
  size_t queries = 0;
  size_t cache_hits = 0;
  size_t maintained_hits = 0;
  size_t compressed_evals = 0;
  size_t direct_evals = 0;
  size_t planner_short_circuits = 0;
  size_t batches_applied = 0;
  size_t updates_applied = 0;
  /// CSR snapshot (re)builds across the engine's match contexts. Steady
  /// state (repeated queries, no updates) must not grow this.
  size_t csr_builds = 0;
  /// Ball-index telemetry across the engine's match contexts and every
  /// maintained query: successful index (re)builds (like csr_builds, steady
  /// state must not grow this), traversals served from the index, and
  /// traversals that ran a BFS although the index was requested (depth
  /// beyond the cap, overflowed hub, budget-refused build).
  size_t ball_index_builds = 0;
  size_t ball_hits = 0;
  size_t bfs_fallbacks = 0;
  double last_eval_ms = 0.0;

  /// Sum of the per-path counters; equals `queries` by construction.
  size_t ClassifiedQueries() const {
    return cache_hits + maintained_hits + planner_short_circuits +
           compressed_evals + direct_evals;
  }

  std::string ToString() const;
};

/// \brief Facade over matching, ranking, incremental maintenance,
/// compression and caching.
class QueryEngine {
 public:
  /// `g` must outlive the engine; the engine mutates it in ApplyUpdates.
  explicit QueryEngine(Graph* g, EngineOptions options = {});

  const Graph& graph() const { return *g_; }
  const EngineOptions& options() const { return options_; }

  /// Evaluates Q under the chosen semantics and returns the match relation
  /// + result graph.
  Result<std::shared_ptr<const QueryAnswer>> Evaluate(
      const Pattern& q, MatchSemantics semantics = MatchSemantics::kBoundedSimulation);

  /// Top-K experts for Q's output node under the chosen metric.
  Result<std::vector<RankedMatch>> TopK(
      const Pattern& q, size_t k,
      RankingMetric metric = RankingMetric::kSocialImpact,
      MatchSemantics semantics = MatchSemantics::kBoundedSimulation);

  /// The uncached evaluation core behind Evaluate, parameterized on the
  /// scratch contexts so callers can bring their own. Const and
  /// thread-compatible: any number of threads may call it concurrently as
  /// long as (a) each call passes contexts no other call is using (`ctx` for
  /// evaluation over G, `compressed_ctx` over Gc) and (b) nothing mutates
  /// the graph or the engine for the duration (the service layer enforces
  /// both with a reader/writer lock and a per-worker context pool). Does not
  /// consult the cache or maintained state and updates no stats; `path`
  /// reports the serving path taken.
  Result<MatchRelation> EvaluateWith(const Pattern& q, MatchSemantics semantics,
                                     const EvalOverrides& overrides, MatchContext* ctx,
                                     MatchContext* compressed_ctx,
                                     EvalPath* path) const;

  /// Snapshot of a maintained query's relation, or nullopt when (q,
  /// semantics) was never registered. Const and thread-compatible under the
  /// same no-concurrent-writer contract as EvaluateWith.
  std::optional<MatchRelation> MaintainedSnapshot(const Pattern& q,
                                                  MatchSemantics semantics) const;

  /// Adds a person to the network (no edges yet; connect via ApplyUpdates).
  /// Maintained queries and the compressed graph are extended in place.
  Result<NodeId> AddNode(std::string_view label,
                         const std::vector<std::pair<std::string, AttrValue>>& attrs = {});

  /// Applies a batch of edge updates, maintaining every registered query
  /// and the compressed graph. The batch is validated first; on validation
  /// failure nothing changes.
  Status ApplyUpdates(const UpdateBatch& batch);

  /// Registers Q as a frequently issued query maintained incrementally
  /// ("decided by the users", §II), under the chosen semantics.
  Status RegisterMaintainedQuery(
      const Pattern& q, MatchSemantics semantics = MatchSemantics::kBoundedSimulation);
  bool IsMaintained(const Pattern& q,
                    MatchSemantics semantics = MatchSemantics::kBoundedSimulation) const;

  /// Builds the compressed graph now (no-op if current). Exposed so callers
  /// can choose the compression moment, mirroring the GUI's "Graph
  /// Compressor" tool.
  Status CompressNow();
  /// The compressed graph, or nullptr when not built.
  const CompressedGraph* compressed() const;

  const EngineStats& stats() const { return stats_; }

 private:
  struct Maintained {
    std::unique_ptr<IncrementalSimulation> sim;
    std::unique_ptr<IncrementalBoundedSimulation> bounded;
    std::unique_ptr<IncrementalDualSimulation> dual;

    MatchRelation Snapshot() const {
      if (sim) return sim->Snapshot();
      if (bounded) return bounded->Snapshot();
      return dual->Snapshot();
    }
    void PreUpdate(const UpdateBatch& batch) {
      if (sim) sim->PreUpdate(batch);
      else if (bounded) bounded->PreUpdate(batch);
      else dual->PreUpdate(batch);
    }
    void PostUpdate(const UpdateBatch& batch) {
      if (sim) sim->PostUpdate(batch);
      else if (bounded) bounded->PostUpdate(batch);
      else dual->PostUpdate(batch);
    }
    void OnNodeAdded(NodeId v) {
      if (sim) sim->OnNodeAdded(v);
      else if (bounded) bounded->OnNodeAdded(v);
      else dual->OnNodeAdded(v);
    }
    size_t BallIndexBuilds() const {
      if (bounded) return bounded->ball_index_builds();
      if (dual) return dual->ball_index_builds();
      return 0;  // plain simulation never bounded-BFSes
    }
    size_t BallHits() const {
      if (bounded) return bounded->ball_hits();
      if (dual) return dual->ball_hits();
      return 0;
    }
    size_t BfsFallbacks() const {
      if (bounded) return bounded->bfs_fallbacks();
      if (dual) return dual->bfs_fallbacks();
      return 0;
    }
  };

  Result<MatchRelation> EvaluateUncached(const Pattern& q, MatchSemantics semantics,
                                         EvalPath* path);

  /// Re-derives the counters that aggregate context and maintained-query
  /// state (csr_builds + the ball-index trio).
  void RefreshDerivedStats();

  Graph* g_;
  EngineOptions options_;
  Planner planner_;
  ResultCache cache_;
  std::unique_ptr<MaintainedCompression> compression_;
  std::unordered_map<uint64_t, Maintained> maintained_;
  /// Scratch + versioned CSR snapshot for evaluations over *g_ (matchers
  /// and ResultGraph construction share it, so a steady-state query builds
  /// no per-query CSR at all).
  MatchContext match_ctx_;
  /// Separate context for evaluations over the compressed graph, so
  /// alternating direct/compressed queries don't thrash one snapshot slot.
  MatchContext compressed_ctx_;
  EngineStats stats_;
};

}  // namespace expfinder

#endif  // EXPFINDER_ENGINE_QUERY_ENGINE_H_
