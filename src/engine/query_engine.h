// The ExpFinder query engine (paper §II, Fig. 2): evaluates pattern
// queries, ranks matches, and coordinates the result cache, the incremental
// computation module, and the graph compression module.
//
// Since ISSUE 6 the engine is a thin stateful facade over the stateless
// EvalCore (eval_core.h). The facade owns the mutable half — the live
// graph, the result cache, the incremental maintainers, the compression
// state — and turns it into immutable EngineSnapshots via Publish():
//
//   Publish():     freeze (graph copy + CSR, current compressed view,
//                  materialized maintained relations) into a refcounted
//                  EngineSnapshot. Lazy: republishes only when a mutation
//                  happened since the last publish, and reuses the graph /
//                  compressed handles that didn't change.
//   Evaluate(Q):   cache hit -> return cached M(Q,G)
//                  maintained query -> relation from the pinned snapshot
//                  compressed view attached & compatible -> evaluate on Gc,
//                     decompress
//                  otherwise -> direct (bounded) simulation, all through
//                  EvalCore against the published snapshot.
//   ApplyUpdates:  routes batches through every registered incremental
//                  state, then re-stabilizes the compressed graph. The next
//                  Publish() carries the transition to readers — maintainer
//                  PreUpdate/PostUpdate are the first half of the publish
//                  step (ExpFinderService::Mutate completes it by swapping
//                  its epoch pointer to the fresh snapshot).

#ifndef EXPFINDER_ENGINE_QUERY_ENGINE_H_
#define EXPFINDER_ENGINE_QUERY_ENGINE_H_

#include <memory>
#include <optional>
#include <unordered_map>

#include "src/compression/maintenance.h"
#include "src/engine/eval_core.h"
#include "src/engine/result_cache.h"
#include "src/incremental/inc_bounded.h"
#include "src/incremental/inc_dual.h"
#include "src/incremental/inc_simulation.h"
#include "src/matching/match_context.h"
#include "src/ranking/topk.h"
#include "src/util/timer.h"

namespace expfinder {

/// \brief Execution telemetry (cumulative + last query breakdown).
///
/// Every query is classified into exactly one serving path, so
///   queries == cache_hits + maintained_hits + planner_short_circuits +
///              compressed_evals + direct_evals
/// holds at all times (planner short circuits used to be double-counted as
/// direct evals; maintained hits bypass the eval core entirely but still
/// set last_eval_ms).
struct EngineStats {
  size_t queries = 0;
  size_t cache_hits = 0;
  size_t maintained_hits = 0;
  size_t compressed_evals = 0;
  size_t direct_evals = 0;
  size_t planner_short_circuits = 0;
  size_t batches_applied = 0;
  size_t updates_applied = 0;
  /// CSR snapshot (re)builds: one per GraphSnapshot captured at publish
  /// time, plus any private per-context builds (the pre-snapshot paths).
  /// Steady state (repeated queries, no updates) must not grow this.
  size_t csr_builds = 0;
  /// Snapshot lifecycle: EngineSnapshots created by Publish(), handles
  /// handed out (every Evaluate pins one; every Publish call returns one),
  /// and snapshots superseded by a newer publish (retired from the
  /// engine's slot — readers still holding the handle keep it alive).
  size_t snapshots_published = 0;
  size_t snapshot_acquires = 0;
  size_t snapshots_retired = 0;
  /// Ball-index telemetry across the engine's match contexts and every
  /// maintained query: successful index (re)builds (like csr_builds, steady
  /// state must not grow this), traversals served from the index, and
  /// traversals that ran a BFS although the index was requested (depth
  /// beyond the cap, overflowed hub, budget-refused build).
  size_t ball_index_builds = 0;
  size_t ball_hits = 0;
  size_t bfs_fallbacks = 0;
  /// Topic-index telemetry (see index/topic_index.h): successful inverted
  /// index builds (snapshot slots + the maintained index, steady state must
  /// not grow this), pattern nodes seeded from a posting list, and pattern
  /// nodes with text predicates that scanned anyway (index deferred,
  /// refused, disabled, or not cheaper than the scan).
  size_t topic_index_builds = 0;
  size_t posting_hits = 0;
  size_t seed_scan_fallbacks = 0;
  /// Wall time of the last Evaluate, stamped uniformly on every serving
  /// path *and* on failed evaluations (cancel, deadline, error).
  double last_eval_ms = 0.0;

  /// Sum of the per-path counters; equals `queries` by construction.
  size_t ClassifiedQueries() const {
    return cache_hits + maintained_hits + planner_short_circuits +
           compressed_evals + direct_evals;
  }

  std::string ToString() const;
};

/// \brief Stateful facade over matching, ranking, incremental maintenance,
/// compression and caching; publishes immutable EngineSnapshots for the
/// lock-free serving path.
class QueryEngine {
 public:
  /// `g` must outlive the engine; the engine mutates it in ApplyUpdates.
  explicit QueryEngine(Graph* g, EngineOptions options = {});

  const Graph& graph() const { return *g_; }
  const EngineOptions& options() const { return core_.options(); }
  /// The stateless evaluation core (shared configuration + planner).
  const EvalCore& core() const { return core_; }

  /// The current published snapshot, republishing first when any mutation
  /// happened since the last publish. Cheap when current (two integer
  /// compares); a republish costs the graph copy + CSR build plus the
  /// materialization of maintained relations and the compressed view.
  /// Handles unchanged by the mutation (e.g. the graph after
  /// RegisterMaintainedQuery) are reused, not recaptured. Not thread-safe
  /// against other engine calls — the service serializes Publish behind its
  /// writer lock; readers consume the returned handle, never the engine.
  std::shared_ptr<const EngineSnapshot> Publish();

  /// Evaluates Q under the chosen semantics and returns the match relation
  /// + result graph.
  Result<std::shared_ptr<const QueryAnswer>> Evaluate(
      const Pattern& q, MatchSemantics semantics = MatchSemantics::kBoundedSimulation);

  /// Top-K experts for Q's output node under the chosen metric.
  Result<std::vector<RankedMatch>> TopK(
      const Pattern& q, size_t k,
      RankingMetric metric = RankingMetric::kSocialImpact,
      MatchSemantics semantics = MatchSemantics::kBoundedSimulation);

  /// The uncached evaluation core behind Evaluate: EvalCore::Evaluate
  /// against a pinned snapshot, parameterized on the scratch contexts so
  /// callers can bring their own. Const and thread-safe: any number of
  /// threads may call it concurrently as long as each call passes contexts
  /// no other call is using (`ctx` for evaluation over the snapshot's
  /// graph, `compressed_ctx` over its Gc) — the snapshot is immutable, so
  /// no reader ever waits on a writer. Does not consult the cache or
  /// maintained state and updates no stats; `path` reports the serving
  /// path taken.
  Result<MatchRelation> EvaluateWith(const EngineSnapshot& snap, const Pattern& q,
                                     MatchSemantics semantics,
                                     const EvalOverrides& overrides, MatchContext* ctx,
                                     MatchContext* compressed_ctx,
                                     EvalPath* path) const;

  /// Snapshot of a maintained query's relation, or nullopt when (q,
  /// semantics) was never registered. Reads the *live* maintainer state —
  /// concurrent readers should use EngineSnapshot::Maintained instead.
  std::optional<MatchRelation> MaintainedSnapshot(const Pattern& q,
                                                  MatchSemantics semantics) const;

  /// Adds a person to the network (no edges yet; connect via ApplyUpdates).
  /// Maintained queries and the compressed graph are extended in place.
  Result<NodeId> AddNode(std::string_view label,
                         const std::vector<std::pair<std::string, AttrValue>>& attrs = {});

  /// Applies a batch of edge updates, maintaining every registered query
  /// and the compressed graph. The batch is validated first; on validation
  /// failure nothing changes.
  Status ApplyUpdates(const UpdateBatch& batch);

  /// Registers Q as a frequently issued query maintained incrementally
  /// ("decided by the users", §II), under the chosen semantics.
  Status RegisterMaintainedQuery(
      const Pattern& q, MatchSemantics semantics = MatchSemantics::kBoundedSimulation);
  bool IsMaintained(const Pattern& q,
                    MatchSemantics semantics = MatchSemantics::kBoundedSimulation) const;

  /// Builds the compressed graph now (no-op if current). Exposed so callers
  /// can choose the compression moment, mirroring the GUI's "Graph
  /// Compressor" tool.
  Status CompressNow();
  /// The compressed graph, or nullptr when not built.
  const CompressedGraph* compressed() const;

  const EngineStats& stats() const { return stats_; }

 private:
  struct Maintained {
    std::unique_ptr<IncrementalSimulation> sim;
    std::unique_ptr<IncrementalBoundedSimulation> bounded;
    std::unique_ptr<IncrementalDualSimulation> dual;

    MatchRelation Snapshot() const {
      if (sim) return sim->Snapshot();
      if (bounded) return bounded->Snapshot();
      return dual->Snapshot();
    }
    void PreUpdate(const UpdateBatch& batch) {
      if (sim) sim->PreUpdate(batch);
      else if (bounded) bounded->PreUpdate(batch);
      else dual->PreUpdate(batch);
    }
    void PostUpdate(const UpdateBatch& batch) {
      if (sim) sim->PostUpdate(batch);
      else if (bounded) bounded->PostUpdate(batch);
      else dual->PostUpdate(batch);
    }
    void OnNodeAdded(NodeId v) {
      if (sim) sim->OnNodeAdded(v);
      else if (bounded) bounded->OnNodeAdded(v);
      else dual->OnNodeAdded(v);
    }
    size_t BallIndexBuilds() const {
      if (bounded) return bounded->ball_index_builds();
      if (dual) return dual->ball_index_builds();
      return 0;  // plain simulation never bounded-BFSes
    }
    size_t BallHits() const {
      if (bounded) return bounded->ball_hits();
      if (dual) return dual->ball_hits();
      return 0;
    }
    size_t BfsFallbacks() const {
      if (bounded) return bounded->bfs_fallbacks();
      if (dual) return dual->bfs_fallbacks();
      return 0;
    }
  };

  /// Re-derives the counters that aggregate context and maintained-query
  /// state (csr_builds + the ball-index trio).
  void RefreshDerivedStats();

  /// Marks published state stale; the next Publish() builds a successor.
  void BumpEngineSeq() { ++engine_seq_; }

  Graph* g_;
  EvalCore core_;
  ResultCache cache_;
  std::unique_ptr<MaintainedCompression> compression_;
  std::unordered_map<uint64_t, Maintained> maintained_;
  /// Incrementally maintained topic index over the live graph, built lazily
  /// the first time a maintained query with text predicates registers (the
  /// registration itself seeds from it). AddNode patches it in place;
  /// engine edge updates never touch content, so it stays exact.
  std::unique_ptr<MaintainedTopicIndex> maintained_topics_;
  /// Scratch for evaluations through Evaluate()/TopK(); bound to the
  /// published snapshot at each Publish, so a steady-state query builds no
  /// per-query CSR at all.
  MatchContext match_ctx_;
  /// Separate context for evaluations over the compressed graph, so
  /// alternating direct/compressed queries don't thrash one snapshot slot.
  MatchContext compressed_ctx_;
  /// The current published snapshot (null until the first Publish).
  std::shared_ptr<const EngineSnapshot> published_;
  /// Bumped by every mutation; published_->engine_seq trails it exactly
  /// when a republish is owed.
  uint64_t engine_seq_ = 0;
  /// CSRs built inside GraphSnapshot captures (feeds stats_.csr_builds).
  size_t snapshot_csr_builds_ = 0;
  EngineStats stats_;
};

}  // namespace expfinder

#endif  // EXPFINDER_ENGINE_QUERY_ENGINE_H_
