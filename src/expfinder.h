// Umbrella header: the public API of the ExpFinder library.
//
// ExpFinder (Fan, Wang, Wu — ICDE 2013) finds experts in social networks by
// graph pattern matching: bounded simulation queries, top-K social-impact
// ranking, incremental maintenance under edge updates, and query-preserving
// graph compression. See README.md for a tour and DESIGN.md for the
// architecture.

#ifndef EXPFINDER_EXPFINDER_H_
#define EXPFINDER_EXPFINDER_H_

// Utilities.
#include "src/util/dense_bitset.h"
#include "src/util/logging.h"
#include "src/util/random.h"
#include "src/util/result.h"
#include "src/util/status.h"
#include "src/util/string_util.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

// Graph substrate.
#include "src/graph/attribute.h"
#include "src/graph/bfs.h"
#include "src/graph/csr.h"
#include "src/graph/graph.h"
#include "src/graph/graph_io.h"
#include "src/graph/scc.h"
#include "src/graph/shortest_paths.h"
#include "src/graph/stats.h"
#include "src/graph/types.h"

// Dataset generators.
#include "src/generator/generators.h"

// Pattern queries.
#include "src/query/condition.h"
#include "src/query/pattern.h"
#include "src/query/pattern_parser.h"

// Topic inverted index (free-text expert search).
#include "src/index/topic_index.h"

// Matching engines.
#include "src/matching/bounded_simulation.h"
#include "src/matching/candidates.h"
#include "src/matching/dual_simulation.h"
#include "src/matching/explain.h"
#include "src/matching/match_context.h"
#include "src/matching/match_relation.h"
#include "src/matching/result_graph.h"
#include "src/matching/simulation.h"
#include "src/matching/vf2.h"

// Ranking.
#include "src/ranking/fusion.h"
#include "src/ranking/metrics.h"
#include "src/ranking/social_impact.h"
#include "src/ranking/topk.h"

// Incremental computation.
#include "src/incremental/inc_bounded.h"
#include "src/incremental/inc_dual.h"
#include "src/incremental/inc_simulation.h"
#include "src/incremental/update.h"

// Graph compression.
#include "src/compression/bisimulation.h"
#include "src/compression/compressed_graph.h"
#include "src/compression/maintenance.h"
#include "src/compression/sim_equivalence.h"

// Query engine.
#include "src/engine/planner.h"
#include "src/engine/query_engine.h"
#include "src/engine/result_cache.h"

// Concurrent serving API.
#include "src/service/admission_queue.h"
#include "src/service/expfinder_service.h"
#include "src/service/service_types.h"

// Storage & visualization.
#include "src/storage/graph_store.h"
#include "src/viz/dot_export.h"
#include "src/viz/table_render.h"

#endif  // EXPFINDER_EXPFINDER_H_
