#!/usr/bin/env python3
"""Appends one labelled entry to a BENCH_*.json perf-trajectory file.

Usage: bench_append.py TRAJECTORY_FILE LABEL GOOGLE_BENCHMARK_JSON [BUILD_TYPE]

BUILD_TYPE is the CMAKE_BUILD_TYPE our benchmark binaries were compiled
with (recorded lower-case). Without it the entry falls back to Google
Benchmark's "library_build_type", which describes how the *benchmark
library* was compiled — on systems with a debug libbenchmark package that
field says "debug" even for a -O3 binary, which is what polluted the
pre-PR-5 trajectory entries.

The trajectory file holds {"entries": [...]}, one entry per recorded run:
  {"label": ..., "date": ..., "host": {...}, "benchmarks":
      [{"name": ..., "real_time_ms": ..., "cpu_time_ms": ..., "iterations": ...,
        "counters": {...}}]}
where "counters" carries any user counters the benchmark reported (e.g.
bench_service's queue_ms_mean admission-queue latency) and is omitted when
there are none.

Entries with the same label are replaced (re-running a label refreshes its
numbers instead of piling up duplicates). After appending, the deltas
against the previous entry are printed so a before/after comparison is one
`scripts/bench.sh` away.
"""

import json
import sys

# Keys Google Benchmark emits for every run; anything else numeric is a
# user counter worth keeping in the trajectory.
_STANDARD_KEYS = {
    "name", "family_index", "per_family_instance_index", "run_name",
    "run_type", "repetitions", "repetition_index", "threads", "iterations",
    "real_time", "cpu_time", "time_unit", "aggregate_name", "label",
    "error_occurred", "error_message",
    # Derived from SetItemsProcessed/SetBytesProcessed — redundant with the
    # recorded times, not user counters.
    "items_per_second", "bytes_per_second",
}


# Google Benchmark reports times in the unit the benchmark chose with
# ->Unit(); the trajectory normalizes everything to milliseconds.
_UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def _benchmark_entry(b: dict) -> dict:
    to_ms = _UNIT_TO_MS.get(b.get("time_unit", "ns"), 1e-6)
    entry = {
        "name": b["name"],
        "real_time_ms": round(b["real_time"] * to_ms, 4),
        "cpu_time_ms": round(b["cpu_time"] * to_ms, 4),
        "iterations": b["iterations"],
    }
    counters = {
        k: round(v, 4)
        for k, v in b.items()
        if k not in _STANDARD_KEYS and isinstance(v, (int, float))
    }
    if counters:
        entry["counters"] = counters
    return entry


def main() -> int:
    if len(sys.argv) not in (4, 5):
        print(__doc__, file=sys.stderr)
        return 2
    trajectory_path, label, run_path = sys.argv[1], sys.argv[2], sys.argv[3]
    build_type = sys.argv[4].lower() if len(sys.argv) == 5 else None

    with open(run_path) as f:
        run = json.load(f)
    ctx = run.get("context", {})
    entry = {
        "label": label,
        "date": ctx.get("date", ""),
        "host": {
            "num_cpus": ctx.get("num_cpus"),
            "mhz_per_cpu": ctx.get("mhz_per_cpu"),
            "build_type": build_type or ctx.get("library_build_type"),
        },
        "benchmarks": [
            _benchmark_entry(b)
            for b in run.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"
        ],
    }

    try:
        with open(trajectory_path) as f:
            trajectory = json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        trajectory = {"entries": []}

    entries = [e for e in trajectory.get("entries", []) if e.get("label") != label]
    previous = entries[-1] if entries else None
    entries.append(entry)
    trajectory["entries"] = entries

    with open(trajectory_path, "w") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")

    print(f"{trajectory_path}: recorded '{label}' ({len(entry['benchmarks'])} benchmarks)")
    if previous is not None:
        prev_times = {b["name"]: b["real_time_ms"] for b in previous["benchmarks"]}
        for b in entry["benchmarks"]:
            if b["name"] in prev_times and b["real_time_ms"] > 0:
                speedup = prev_times[b["name"]] / b["real_time_ms"]
                print(
                    f"  {b['name']:45s} {prev_times[b['name']]:10.3f} -> "
                    f"{b['real_time_ms']:10.3f} ms  ({speedup:.2f}x vs '{previous['label']}')"
                )
    return 0


if __name__ == "__main__":
    sys.exit(main())
