#!/usr/bin/env bash
# Benchmark-trajectory harness: builds the Google-Benchmark binaries with
# -DEXPFINDER_BUILD_BENCH=ON, runs the benchmark suites with JSON output,
# and appends one labelled entry per suite to BENCH_<suite>.json at the repo
# root. Successive PRs run this to extend the trajectory, so every
# optimization lands with comparable before/after numbers on the same
# machine.
#
# Usage: scripts/bench.sh [extra cmake args...]
# Env:
#   BENCH_LABEL      trajectory entry label (default: git short sha;
#                    re-using a label replaces that entry)
#   BENCH_MIN_TIME   per-benchmark min time in seconds, e.g. 0.01 for a
#                    smoke run (default: 0.2; plain double — older Google
#                    Benchmark releases reject the "s"-suffixed form)
#   BENCH_FILTER     --benchmark_filter regex (default: run everything)
#   BENCH_BUILD_DIR  build directory (default: build)
#   BENCH_BUILD_TYPE CMAKE_BUILD_TYPE for the bench build (default:
#                    Release). Benchmarks built without optimization are
#                    not worth recording — every pre-PR-5 trajectory entry
#                    says "build_type": "debug" and undercuts comparisons;
#                    from PR 5 on, entries are Release unless explicitly
#                    overridden.
#   BENCH_SUITES    space-separated subset of "matching engine service
#                   storage index replication" (default: all six) — e.g.
#                   record an async serving baseline alone with
#                   BENCH_SUITES=service BENCH_LABEL=pr4 scripts/bench.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BENCH_BUILD_DIR:-build}
LABEL=${BENCH_LABEL:-$(git rev-parse --short HEAD 2>/dev/null || echo unlabelled)}
MIN_TIME=${BENCH_MIN_TIME:-0.2}
FILTER=${BENCH_FILTER:-}
SUITES=${BENCH_SUITES:-"matching engine service storage index replication"}
BUILD_TYPE=${BENCH_BUILD_TYPE:-Release}

targets=()
for suite in $SUITES; do
  targets+=("bench_$suite")
done
cmake -B "$BUILD_DIR" -S . -DEXPFINDER_BUILD_BENCH=ON \
  -DCMAKE_BUILD_TYPE="$BUILD_TYPE" "$@"
cmake --build "$BUILD_DIR" -j"$(nproc)" --target "${targets[@]}"

for suite in $SUITES; do
  bin="$BUILD_DIR/bench/bench_$suite"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (is the Google Benchmark library installed?)" >&2
    exit 2
  fi
  out=$(mktemp)
  args=(--benchmark_out="$out" --benchmark_out_format=json
        --benchmark_min_time="$MIN_TIME")
  if [[ -n "$FILTER" ]]; then
    args+=(--benchmark_filter="$FILTER")
  fi
  echo "=== bench_$suite (label: $LABEL, min_time: $MIN_TIME) ==="
  "$bin" "${args[@]}" >/dev/null
  python3 scripts/bench_append.py "BENCH_$suite.json" "$LABEL" "$out" "$BUILD_TYPE"
  rm -f "$out"
done
