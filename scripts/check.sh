#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run every test suite from a clean (or
# incremental) build directory. This is the exact command sequence recorded
# in ROADMAP.md; CI runs this script verbatim.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . "$@"
cmake --build build -j
cd build && ctest --output-on-failure -j"$(nproc)"
